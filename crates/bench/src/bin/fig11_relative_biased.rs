//! Fig 11: relative performance vs reference V cycle — accuracy 1e5,
//! biased uniform data, across the three (modeled) testbed machines.

use petamg_core::training::Distribution;

fn main() {
    petamg_bench::relative_performance_figure("Figure 11", Distribution::BiasedUniform, 1e5);
}
