//! Fig 8: ratio view of Fig 7 — times slower than the autotuned
//! algorithm, computed on *modeled* cost (deterministic, extends to the
//! paper's larger sizes without hour-long SOR runs). Use
//! `fig07_heuristics` for the wall-clock version; both shapes must
//! agree.

use petamg_bench::{banner, env_max_level, n_of};
use petamg_core::cost::MachineProfile;
use petamg_core::heuristics::paper_strategies;
use petamg_core::training::{Distribution, ProblemInstance};
use petamg_core::tuner::{priced_run, TunerOptions, VTuner};
use petamg_grid::Exec;
use petamg_solvers::DirectSolverCache;
use std::sync::Arc;

fn main() {
    let max_level = env_max_level(10);
    banner(
        "Figure 8",
        "times slower than autotuned (modeled cost), accuracy 1e9, biased data",
        "Deterministic modeled Intel-Harpertown costs; complements the\n\
         wall-clock ratios printed by fig07_heuristics.",
    );

    let profile = MachineProfile::intel_harpertown();
    let opts = TunerOptions::modeled(max_level, Distribution::BiasedUniform, profile.clone());
    eprintln!("tuning autotuned family ...");
    let tuned = VTuner::new(opts.clone()).tune();
    eprintln!("building heuristics ...");
    let strategies = paper_strategies(&opts);

    let exec = Exec::seq();
    let cache = Arc::new(DirectSolverCache::new());
    let names: Vec<String> = strategies
        .iter()
        .map(|(n, _)| n.replace(' ', "_"))
        .collect();
    println!("N,{},autotuned", names.join(","));

    for level in 6..=max_level {
        let n = n_of(level);
        let inst = ProblemInstance::random(level, Distribution::BiasedUniform, 800 + level as u64);
        let (auto_cost, _) = priced_run(&profile, &exec, &cache, |ctx| {
            let mut x = inst.working_grid();
            tuned.run(level, tuned.acc_index_for(1e9), &mut x, &inst.b, ctx);
        });
        let mut cols = Vec::new();
        for (_, fam) in &strategies {
            let (cost, _) = priced_run(&profile, &exec, &cache, |ctx| {
                let mut x = inst.working_grid();
                fam.run(level, fam.num_accuracies() - 1, &mut x, &inst.b, ctx);
            });
            cols.push(format!("{:.2}", cost / auto_cost));
        }
        println!("{n},{},1.00", cols.join(","));
    }
    println!(
        "# paper shape check: ratios >= 1 everywhere; the crossing order of the\n\
         # 10^x/10^9 curves shifts toward higher x as N grows."
    );
}
