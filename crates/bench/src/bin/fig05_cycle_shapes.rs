//! Fig 5: optimized multigrid V (a, b) and full multigrid (c, d) cycles
//! created by the autotuner, trained on unbiased (a, c) and biased
//! (b, d) uniform random data. Cycles i-iv correspond to accuracy
//! targets 10, 1e3, 1e5, 1e7.
//!
//! The paper used N = 2049 on the AMD Opteron; the modeled
//! AMD-Barcelona profile stands in (PETAMG_MAX_LEVEL overrides, default
//! level 9 → N = 513).

use petamg_bench::{banner, env_max_level, n_of};
use petamg_core::cost::MachineProfile;
use petamg_core::plan::ExecCtx;
use petamg_core::render;
use petamg_core::training::{Distribution, ProblemInstance};
use petamg_core::tuner::{FmgTuner, TunerOptions};
use petamg_grid::Exec;

fn main() {
    let level = env_max_level(9);
    banner(
        "Figure 5",
        "autotuned V-type and full-multigrid cycle shapes",
        "Modeled AMD-Barcelona machine. Dots = SOR(1.15) relaxations,\n\
         D = direct solve, S = iterated SOR, \\/ = restrict/interpolate.",
    );

    for (tag, dist) in [
        ("a/c", Distribution::UnbiasedUniform),
        ("b/d", Distribution::BiasedUniform),
    ] {
        println!(
            "=== ({tag}) trained on {} data, N = {} ===\n",
            dist.name(),
            n_of(level)
        );
        let opts = TunerOptions::modeled(level, dist, MachineProfile::amd_barcelona());
        let fmg = FmgTuner::new(opts).tune();
        let inst = ProblemInstance::random(level, dist, 2_049);

        for (roman, target) in [("i", 1e1), ("ii", 1e3), ("iii", 1e5), ("iv", 1e7)] {
            let i = fmg.v.acc_index_for(target);

            println!("--- {roman}) MULTIGRID-V, accuracy {target:.0e} ---");
            let mut ctx = ExecCtx::new(Exec::seq()).tracing();
            let mut x = inst.working_grid();
            fmg.v.run(level, i, &mut x, &inst.b, &mut ctx);
            println!("{}", render::render_cycle(&ctx.tracer.events));

            println!("--- {roman}) FULL-MULTIGRID, accuracy {target:.0e} ---");
            let mut ctx = ExecCtx::new(Exec::seq()).tracing();
            let mut x = inst.working_grid();
            fmg.run(level, i, &mut x, &inst.b, &mut ctx);
            println!("{}", render::render_cycle(&ctx.tracer.events));
        }
    }
}
