//! §4.3 cross-tuning study: run each machine's tuned cycle on every
//! other machine and report the slowdown vs native tuning (the paper
//! measured 29% / 79% slowdowns between the Xeon and the Niagara for
//! full-multigrid cycles at N = 2049).

use petamg_bench::{banner, env_max_level, n_of, tuned_fmg_cost};
use petamg_core::cost::MachineProfile;
use petamg_core::training::{Distribution, ProblemInstance};
use petamg_core::tuner::{FmgTuner, TunerOptions};
use petamg_grid::Exec;
use petamg_solvers::DirectSolverCache;
use std::sync::Arc;

fn main() {
    let level = env_max_level(9);
    banner(
        "Cross-tuning (§4.3)",
        "slowdown from running a cycle tuned on machine A on machine B",
        "Rows: machine the cycle was trained on. Columns: machine it runs on.\n\
         Entries: modeled time relative to that column's natively-tuned cycle\n\
         (1.00 on the diagonal by construction). Accuracy 1e5, unbiased data.",
    );

    let dist = Distribution::UnbiasedUniform;
    let profiles = MachineProfile::all_testbeds();
    eprintln!("tuning FMG families on all three machines ...");
    let families: Vec<_> = profiles
        .iter()
        .map(|p| FmgTuner::new(TunerOptions::modeled(level, dist, p.clone())).tune())
        .collect();

    let cache = Arc::new(DirectSolverCache::new());
    let exec = Exec::seq();
    let mut inst = ProblemInstance::random(level, dist, 4_343);
    inst.ensure_x_opt(&exec, &cache);

    // cost[a][b] = family tuned on a, priced on b.
    let mut cost = vec![vec![0.0f64; profiles.len()]; profiles.len()];
    for (a, fam) in families.iter().enumerate() {
        for (b, profile) in profiles.iter().enumerate() {
            cost[a][b] = tuned_fmg_cost(profile, fam, &inst, 1e5, &cache);
        }
    }

    println!(
        "trained_on\\runs_on,{}",
        profiles
            .iter()
            .map(|p| p.name.clone())
            .collect::<Vec<_>>()
            .join(",")
    );
    for (a, fam_profile) in profiles.iter().enumerate() {
        let row: Vec<String> = (0..profiles.len())
            .map(|b| format!("{:.2}", cost[a][b] / cost[b][b]))
            .collect();
        println!("{},{}", fam_profile.name, row.join(","));
    }
    println!(
        "# N = {}; paper observed 1.29x (Niagara-trained on Xeon) and 1.79x\n\
         # (Xeon-trained on Niagara); the matrix shape — off-diagonal >= 1.00 —\n\
         # is the claim under reproduction.",
        n_of(level)
    );
}
