//! Fig 1: the choice structure of the multigrid algorithm — at every
//! level the algorithm may recurse (diagonal arrow) or shortcut to a
//! direct/iterative solve (dotted horizontal arrow).
//!
//! The figure is schematic in the paper; here we print the schematic
//! *and* the concrete choices a tuned family actually made, which is
//! the figure's point.

use petamg_bench::{banner, env_max_level, n_of};
use petamg_core::training::Distribution;
use petamg_core::tuner::{TunerOptions, VTuner};

fn main() {
    let max_level = env_max_level(7);
    banner(
        "Figure 1",
        "algorithmic choices in the multigrid algorithm",
        "Schematic (top) and the concrete tuned decision table (bottom).",
    );

    println!("at every recursion level, MULTIGRID-V may:");
    println!("   (a) solve directly              [horizontal shortcut]");
    println!("   (b) iterate SOR(w_opt)          [horizontal shortcut]");
    println!("   (c) recurse to a coarser grid   [diagonal descent]");
    println!();
    for level in (1..=max_level).rev() {
        let pad = "  ".repeat(max_level - level);
        println!("{pad}level {level} (N={}) --(a|b)--> done", n_of(level));
        if level > 1 {
            println!("{pad}  \\--(c)--v");
        }
    }
    println!();

    let fam = VTuner::new(TunerOptions::quick(
        max_level,
        Distribution::UnbiasedUniform,
    ))
    .tune();
    println!("tuned decisions (modeled Intel-Harpertown, unbiased data):");
    println!(
        "level,N,{}",
        fam.accuracies
            .iter()
            .map(|p| format!("p={p:.0e}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    for level in (1..=max_level).rev() {
        let row: Vec<String> = (0..fam.num_accuracies())
            .map(|i| fam.plan(level, i).describe())
            .collect();
        println!("{level},{},{}", n_of(level), row.join(","));
    }
}
