//! Fig 6: wall-clock time to solve Poisson to accuracy 1e9 on unbiased
//! uniform data — Direct vs iterated SOR vs standard multigrid vs the
//! autotuned algorithm.
//!
//! The paper swept N up to 16384 on an 8-core Xeon; defaults here sweep
//! to N = 513 (PETAMG_MAX_LEVEL overrides) on the host machine. The
//! shape to reproduce: direct explodes first, SOR second; autotuned
//! tracks multigrid and wins at every size (dramatically at small N).

use petamg_bench::{banner, env_max_level, n_of, time_best};
use petamg_core::accuracy::ratio_of_errors;
use petamg_core::training::{Distribution, ProblemInstance};
use petamg_core::tuner::{TunerOptions, VTuner};
use petamg_grid::{l2_diff, Exec};
use petamg_linalg::PoissonDirect;
use petamg_solvers::{omega_opt, sor_sweep, DirectSolverCache, MgConfig, ReferenceSolver};
use std::sync::Arc;

const DIRECT_MAX_N: usize = 257;
const SOR_MAX_N: usize = 513;

fn main() {
    let max_level = env_max_level(9);
    let target = 1e9;
    banner(
        "Figure 6",
        "time (s) to solve to accuracy 1e9, unbiased uniform data",
        "Wall clock on this host. Direct is capped at N=257 (O(N^4) factor),\n\
         SOR at N=513 (O(N^3) iteration) — the same blow-ups the paper plots.\n\
         'skip' marks sizes above a method's cap.",
    );

    // Tune once on this machine (wall-clock cost model).
    eprintln!("tuning MULTIGRID-V on this machine up to level {max_level} ...");
    let tuner = VTuner::new(TunerOptions::measured(
        max_level,
        Distribution::UnbiasedUniform,
        Exec::seq(),
    ));
    let tuned = tuner.tune();
    eprintln!("tuning done: {}", tuned.provenance);

    println!("N,direct_s,sor_s,multigrid_s,autotuned_s");
    let exec = Exec::seq();
    for level in 2..=max_level {
        let n = n_of(level);
        let cache = Arc::new(DirectSolverCache::new());
        let mut inst =
            ProblemInstance::random(level, Distribution::UnbiasedUniform, 600 + level as u64);
        let x_opt = inst.ensure_x_opt(&exec, &cache).clone();
        let e0 = l2_diff(&inst.x0, &x_opt, &exec);
        let done =
            |x: &petamg_grid::Grid2d| ratio_of_errors(e0, l2_diff(x, &x_opt, &exec)) >= target;

        // Direct (factor + solve, like DPBSV).
        let direct = if n <= DIRECT_MAX_N {
            Some(time_best(2, || {
                let solver = PoissonDirect::new(n).expect("SPD");
                let mut x = inst.working_grid();
                solver.solve(&mut x, &inst.b);
            }))
        } else {
            None
        };

        // SOR(omega_opt) iterated to 1e9.
        let sor = if n <= SOR_MAX_N {
            let omega = omega_opt(n);
            let mut sweeps = 0u32;
            let mut x = inst.working_grid();
            while !done(&x) && sweeps < 2_000_000 {
                sor_sweep(&mut x, &inst.b, omega, &exec);
                sweeps += 1;
            }
            Some(time_best(1, || {
                let mut x = inst.working_grid();
                for _ in 0..sweeps {
                    sor_sweep(&mut x, &inst.b, omega, &exec);
                }
            }))
        } else {
            None
        };

        // Standard multigrid (MULTIGRID-V-SIMPLE iterated).
        let solver = ReferenceSolver::with_cache(MgConfig::default(), Arc::clone(&cache));
        let cycles = {
            let mut x = inst.working_grid();
            solver
                .solve_v_until(&mut x, &inst.b, 500, |x| done(x))
                .cycles()
        };
        let mg = time_best(2, || {
            let mut x = inst.working_grid();
            for _ in 0..cycles {
                solver.vcycle(&mut x, &inst.b);
            }
        });

        // Autotuned.
        let acc = tuned.acc_index_for(target);
        tuned.warm_factors(level, acc, &cache);
        let auto = time_best(2, || {
            let mut ctx = petamg_core::plan::ExecCtx::with_cache(exec.clone(), Arc::clone(&cache));
            let mut x = inst.working_grid();
            tuned.run(level, acc, &mut x, &inst.b, &mut ctx);
        });

        let fmt = |v: Option<f64>| v.map_or("skip".to_string(), |t| format!("{t:.6}"));
        println!("{n},{},{},{mg:.6},{auto:.6}", fmt(direct), fmt(sor));
    }
}
