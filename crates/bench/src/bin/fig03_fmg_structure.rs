//! Fig 3: conceptual breakdown of full multigrid into an estimation
//! phase (a recursive FMG call on the coarser problem) and a solve
//! phase. Rendered from an actual traced execution of the standard FMG
//! structure expressed in the tuned-plan machinery.

use petamg_bench::{banner, env_max_level, n_of};
use petamg_core::plan::{simple_v_family, ExecCtx, FmgChoice, FollowUp, TunedFmgFamily};
use petamg_core::render;
use petamg_core::training::{Distribution, ProblemInstance};
use petamg_grid::Exec;

fn main() {
    let level = env_max_level(5);
    banner(
        "Figure 3",
        "full multigrid = estimation phase + solve phase",
        "Standard FMG as a hand-built plan: ESTIMATE recurses into FMG one level\n\
         down; the solve phase is one V cycle per level.",
    );

    // Standard FMG: estimate at the same accuracy, then one V-like cycle.
    let v = simple_v_family(level, &[1e30]);
    let mut plans = vec![Vec::new(); level + 1];
    plans[1] = vec![FmgChoice::Direct];
    for row in plans.iter_mut().skip(2) {
        *row = vec![FmgChoice::Estimate {
            estimate_accuracy: 0,
            follow: FollowUp::Recurse {
                sub_accuracy: 0,
                iterations: 1,
            },
        }];
    }
    let fmg = TunedFmgFamily { v, plans };

    let inst = ProblemInstance::random(level, Distribution::UnbiasedUniform, 12);
    let mut ctx = ExecCtx::new(Exec::seq()).tracing();
    let mut x = inst.working_grid();
    fmg.run(level, 0, &mut x, &inst.b, &mut ctx);

    println!("full multigrid cycle at N = {}:", n_of(level));
    println!("{}", render::render_cycle(&ctx.tracer.events));
    println!("{}", render::summarize_trace(&ctx.tracer.events));
    println!();
    println!("call structure (estimation phase = the recursive FMG calls):");
    println!("{}", render::fmg_call_stack(&fmg, level, 0));
}
