//! Fig 7: wall-clock time to solve to accuracy 1e9 (biased uniform
//! data) — fixed heuristic strategies 10^9 and 10^x/10^9 vs the
//! autotuned algorithm. Fig 8 prints the same data as ratios; this
//! binary emits both (columns are seconds; the trailing block is the
//! ratio view).

use petamg_bench::{banner, env_max_level, n_of, time_best};
use petamg_core::heuristics::paper_strategies;
use petamg_core::plan::ExecCtx;
use petamg_core::training::{Distribution, ProblemInstance};
use petamg_core::tuner::{TunerOptions, VTuner};
use petamg_grid::Exec;
use petamg_solvers::DirectSolverCache;
use std::sync::Arc;

fn main() {
    let max_level = env_max_level(9);
    banner(
        "Figure 7",
        "time (s) to accuracy 1e9, biased data: heuristics vs autotuned",
        "Strategies pin the per-level accuracy requirement; the autotuner may\n\
         choose it freely per level. Sizes below N=65 are omitted (all\n\
         strategies call the direct method there, as in the paper).",
    );

    let opts = TunerOptions::measured(max_level, Distribution::BiasedUniform, Exec::seq());
    eprintln!("tuning autotuned family ...");
    let tuned = VTuner::new(opts.clone()).tune();
    eprintln!("building heuristic strategies ...");
    let strategies = paper_strategies(&opts);

    let exec = Exec::seq();
    let names: Vec<&str> = strategies.iter().map(|(n, _)| n.as_str()).collect();
    println!(
        "N,{},autotuned_s",
        names.join("_s,").replace(' ', "_") + "_s"
    );

    let mut all_rows: Vec<(usize, Vec<f64>, f64)> = Vec::new();
    for level in 6..=max_level {
        let n = n_of(level);
        let cache = Arc::new(DirectSolverCache::new());
        let inst = ProblemInstance::random(level, Distribution::BiasedUniform, 700 + level as u64);

        let time_family = |fam: &petamg_core::plan::TunedFamily| {
            let acc = fam.num_accuracies() - 1;
            fam.warm_factors(level, acc, &cache);
            time_best(2, || {
                let mut ctx = ExecCtx::with_cache(exec.clone(), Arc::clone(&cache));
                let mut x = inst.working_grid();
                fam.run(level, acc, &mut x, &inst.b, &mut ctx);
            })
        };

        let heur_times: Vec<f64> = strategies.iter().map(|(_, f)| time_family(f)).collect();
        let auto_time = {
            let acc = tuned.acc_index_for(1e9);
            tuned.warm_factors(level, acc, &cache);
            time_best(2, || {
                let mut ctx = ExecCtx::with_cache(exec.clone(), Arc::clone(&cache));
                let mut x = inst.working_grid();
                tuned.run(level, acc, &mut x, &inst.b, &mut ctx);
            })
        };

        let cols = heur_times
            .iter()
            .map(|t| format!("{t:.6}"))
            .collect::<Vec<_>>()
            .join(",");
        println!("{n},{cols},{auto_time:.6}");
        all_rows.push((n, heur_times, auto_time));
    }

    println!("#");
    println!("# Figure 8 view — times slower than autotuned (ratio):");
    println!("N,{}", names.join(",").replace(' ', "_"));
    for (n, heur, auto) in &all_rows {
        let cols = heur
            .iter()
            .map(|t| format!("{:.2}", t / auto))
            .collect::<Vec<_>>()
            .join(",");
        println!("{n},{cols}");
    }
    println!(
        "# paper shape check: as N grows the best heuristic shifts from 10^1/10^9\n\
         # toward 10^5/10^9, and the autotuned row is the fastest throughout."
    );
}
