//! Kernel-fusion benchmark: fused single-pass kernels + workspace arena
//! versus the unfused reference path, across grid sizes, execution
//! backends, block-cursor band heights, and temporal-block depths.
//! Emits `BENCH_kernels.json`.
//!
//! Three comparisons per size and backend:
//!
//! * **transfer step** (the hot-path replacement this measures end to
//!   end): the seed-style unfused step — allocate a fresh residual grid,
//!   `residual`, allocate a fresh coarse grid, `restrict_full_weighting`,
//!   `interpolate_add` — against the fused step — `residual_restrict`
//!   into a pooled coarse grid plus `interpolate_correct`, zero
//!   allocations;
//! * **residual→restrict kernels only** (both sides preallocated, so the
//!   number isolates fusion from pooling);
//! * **interpolation kernels only** (`interpolate_add` vs
//!   `interpolate_correct`).
//!
//! Two sweeps over the new tuning axes:
//!
//! * **band sweep** — the fused `residual_restrict` on the pooled
//!   backend across block-cursor band heights. `band_rows = 1` is the
//!   PR 1 pooled path (each coarse-row task re-derives its three
//!   residual rows); taller bands share the rolling window, and the
//!   record carries both the speedup over that baseline and the
//!   parallel-vs-sequential-fused ratio;
//! * **temporal-block sweep** — `sor_sweeps_blocked` against the staged
//!   reference for a fixed sweep count, across fused depths.
//!
//! Flags / env:
//! * `--quick` (or `PETAMG_BENCH_QUICK=1`) — CI smoke mode: fewer
//!   samples, smaller size sweep;
//! * `PETAMG_BENCH_OUT` — output path (default `BENCH_kernels.json`).
//!
//! Fused and unfused results are verified bitwise equal for every size,
//! backend, band, and depth before anything is timed.

use petamg_bench::time_best;
use petamg_choice::KnobTable;
use petamg_core::obs::{self, TelemetryMode};
use petamg_core::plan::{simple_v_family, ExecCtx, TunedFamily, PAPER_ACCURACIES};
use petamg_core::training::{Distribution, ProblemInstance};
use petamg_core::tuner::{tune_kernel_knobs_for_level, KnobTunerOptions, TunerOptions, VTuner};
use petamg_core::{GuardedSolver, SolveTelemetry};
use petamg_grid::{
    batch_width, coarse_size, interpolate_add, interpolate_correct, l2_norm_interior, residual,
    residual_restrict, restrict_full_weighting, size_level, vector_backend, BatchGrid, Exec,
    Grid2d, SimdPolicy, Workspace,
};
use petamg_problems::{residual_op, residual_restrict_op, Problem};
use petamg_solvers::fused::sor_sweeps_blocked;
use petamg_solvers::relax::{jacobi_sweep, sor_sweeps};
use petamg_solvers::{DirectSolverCache, MgConfig, ReferenceSolver};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;

#[derive(Serialize)]
struct BackendRecord {
    /// Backend name: `seq` or `pbrt<threads>`.
    backend: String,
    /// Seed-style unfused transfer step (fresh allocations), seconds.
    step_unfused_alloc_s: f64,
    /// Fused transfer step (workspace-pooled), seconds.
    step_fused_pooled_s: f64,
    /// Headline speedup: unfused+alloc vs fused+pooled.
    step_speedup: f64,
    /// Unfused residual + restrict, both preallocated, seconds.
    rr_unfused_s: f64,
    /// Fused residual_restrict (pooled row buffers), seconds.
    rr_fused_s: f64,
    /// Fusion-only speedup of the residual→restrict chain.
    rr_speedup: f64,
    /// Reference interpolate_add, seconds.
    interp_reference_s: f64,
    /// Row-parity specialized interpolate_correct, seconds.
    interp_fused_s: f64,
    /// Interpolation kernel speedup.
    interp_speedup: f64,
}

#[derive(Serialize)]
struct SizeRecord {
    n: usize,
    backends: Vec<BackendRecord>,
}

#[derive(Serialize)]
struct BandRecord {
    n: usize,
    /// Backend name (pooled).
    backend: String,
    /// Block-cursor band height; 1 == the PR 1 pooled path.
    band_rows: usize,
    /// Fused residual_restrict at this band, seconds.
    rr_fused_s: f64,
    /// Speedup over the band = 1 baseline (the PR 1 pooled path).
    speedup_vs_band1: f64,
    /// Sequential fused time / this parallel fused time (>1 means the
    /// parallel fused path wins outright).
    fused_par_vs_seq: f64,
}

#[derive(Serialize)]
struct TblockRecord {
    n: usize,
    backend: String,
    /// Total SOR sweeps executed (fixed per record set).
    sweeps: usize,
    /// Sweeps fused per wavefront traversal.
    tblock: usize,
    /// Temporally blocked time, seconds.
    blocked_s: f64,
    /// Staged reference (one traversal pair per sweep), seconds.
    staged_s: f64,
    /// staged / blocked.
    speedup: f64,
}

#[derive(Serialize)]
struct SimdRecord {
    n: usize,
    /// Kernel name: `residual`, `restrict`, `interpolate_correct`,
    /// `sor_sweep`, `jacobi`, `l2_norm`.
    kernel: String,
    /// The ISA backend the vector path dispatched to on this machine:
    /// `avx512`, `avx2+fma`, `neon`, or `portable` (no `simd` feature
    /// / unsupported CPU — the portable lane fallback).
    vector_backend: String,
    /// Forced-scalar time, seconds.
    scalar_s: f64,
    /// Forced-vector time, seconds.
    vector_s: f64,
    /// scalar / vector (>1 means the vector path wins).
    speedup: f64,
}

#[derive(Serialize)]
struct KnobTableEntry {
    /// Multigrid level (grid `2^level + 1`).
    level: usize,
    /// Tuned block-cursor band height at this level.
    band_rows: usize,
    /// Tuned temporal-block depth at this level.
    tblock: usize,
}

#[derive(Serialize)]
struct PerLevelKnobRecord {
    n: usize,
    /// Backend name (pooled).
    backend: String,
    /// Tuned V-cycle time with the uniform global default knobs at
    /// every level, seconds.
    global_cycle_s: f64,
    /// Tuned V-cycle time with the per-level knob table, seconds.
    per_level_cycle_s: f64,
    /// global / per-level (>1 means the table wins).
    speedup: f64,
    /// Knob-tuning evaluations spent building the table.
    tune_evaluations: usize,
    /// The tuned table entries, coarse to fine.
    table: Vec<KnobTableEntry>,
}

#[derive(Serialize)]
struct ProblemRecord {
    /// Canonical problem name (`poisson`, `smooth`, `jump1000`,
    /// `aniso0.01`).
    problem: String,
    /// The problem fingerprint, e.g. `variable-diffusion/jump1000@n=129`.
    fingerprint: String,
    n: usize,
    /// Reference V-cycle time for this operator, seconds (pooled
    /// backend, fused kernels; verified bitwise against the staged
    /// composition first).
    vcycle_s: f64,
    /// This operator's V-cycle time relative to constant Poisson on
    /// identical data (>1 means the operator is more expensive).
    vcycle_vs_poisson: f64,
    /// The DP-tuned top-level plan per accuracy target (modeled cost,
    /// deterministic), e.g. `["RECURSE_0×1", "Direct", ...]`.
    tuned_top_plans: Vec<String>,
    /// Whether the full tuned plan table differs from the
    /// constant-Poisson table on the same machine model — the paper's
    /// "plans are per-problem" claim, demonstrated.
    diverges_from_poisson: bool,
}

#[derive(Serialize)]
struct SolveManyRecord {
    backend: String,
    n: usize,
    /// Systems carried per batched cycle (the interleave width).
    width: usize,
    /// Seconds for `width` solo V-cycles, one `run` call per system.
    solo_vcycles_s: f64,
    /// Seconds for one `run_batch` V-cycle carrying all `width`
    /// systems; verified bitwise equal per lane to the solo runs
    /// before timing.
    batched_vcycle_s: f64,
    /// Solo-over-batched throughput ratio (>1: batching wins).
    speedup: f64,
}

#[derive(Serialize)]
struct TelemetryOverheadRecord {
    n: usize,
    /// Warm guarded solve with no telemetry feed attached, seconds.
    baseline_s: f64,
    /// Same solve with a feed attached but the process gate closed —
    /// the shipped default. One relaxed atomic load per solve.
    gated_off_s: f64,
    /// Same solve with the gate open in metrics mode: per-kernel
    /// clocks, phase timers, histogram records.
    enabled_s: f64,
    /// gated_off / baseline - 1. Asserted < 1% at n = 513.
    gated_off_overhead: f64,
    /// enabled / baseline - 1 (informational).
    enabled_overhead: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    quick: bool,
    trials: usize,
    reps_scale: String,
    /// The ISA backend `SimdMode::Vector` dispatches to on this
    /// machine: `avx512`, `avx2+fma`, `neon`, or `portable`.
    vector_backend: String,
    /// The host's batched dispatch width (`petamg_grid::batch_width`):
    /// 8 on AVX-512 hosts, 4 elsewhere. The batch sweep times both
    /// widths regardless; this is what the serving stack would pick.
    batch_width: usize,
    sizes: Vec<SizeRecord>,
    /// Fused residual_restrict across block-cursor band heights
    /// (band_rows = 1 reproduces the PR 1 pooled path).
    band_sweep: Vec<BandRecord>,
    /// Temporally blocked SOR across fused depths.
    tblock_sweep: Vec<TblockRecord>,
    /// Tuned-plan cycle times: one global knob setting at every level
    /// versus a per-level table tuned coarse-to-fine with the seeded
    /// n-ary search (the DP tuner's mechanism).
    per_level_knobs: Vec<PerLevelKnobRecord>,
    /// Per-kernel scalar-vs-vector row-path timings (sequential
    /// backend, forced SimdPolicy), verified bitwise equal first.
    simd_sweep: Vec<SimdRecord>,
    /// Per-operator V-cycle times and tuned-plan divergence across the
    /// canonical problem families (identical input data per family).
    problem_sweep: Vec<ProblemRecord>,
    /// Batched multi-RHS V-cycles (`run_batch` at widths 4 and 8)
    /// versus the same systems cycled one at a time, per backend —
    /// the width axis of the amortization story.
    batch_sweep: Vec<SolveManyRecord>,
    /// Telemetry tax on a warm guarded solve: a feed attached with the
    /// process gate closed must be free next to no feed at all (< 1%
    /// at n = 513, asserted in-bench); the gate-open column prices the
    /// per-kernel clocks and histogram records the metrics mode buys.
    telemetry_overhead: Vec<TelemetryOverheadRecord>,
}

fn test_grids(n: usize) -> (Grid2d, Grid2d) {
    let x = Grid2d::from_fn(n, |i, j| ((i * 31 + j * 17) % 103) as f64 / 7.0 - 5.0);
    let b = Grid2d::from_fn(n, |i, j| ((i * 13 + j * 71) % 97) as f64 / 3.0);
    (x, b)
}

/// Repetitions per timed trial, scaled so each trial does comparable
/// work across sizes (~16M points touched), floored for timer
/// resolution.
fn reps_for(n: usize, quick: bool) -> usize {
    let base = (16_000_000 / (n * n)).max(2);
    if quick {
        (base / 8).max(1)
    } else {
        base
    }
}

fn verify_equivalence(n: usize, exec: &Exec, ws: &Workspace) {
    let (x, b) = test_grids(n);
    let nc = coarse_size(n);
    let seq = Exec::seq();

    let mut r = Grid2d::zeros(n);
    residual(&x, &b, &mut r, &seq);
    let mut want = Grid2d::zeros(nc);
    restrict_full_weighting(&r, &mut want, &seq);
    let mut got = Grid2d::zeros(nc);
    residual_restrict(&x, &b, &mut got, ws, exec);
    assert_eq!(
        got.as_slice(),
        want.as_slice(),
        "fused residual_restrict diverged at n={n} ({exec:?})"
    );

    let mut fine_want = x.clone();
    interpolate_add(&want, &mut fine_want, &seq);
    let mut fine_got = x.clone();
    interpolate_correct(&want, &mut fine_got, exec);
    assert_eq!(
        fine_got.as_slice(),
        fine_want.as_slice(),
        "fused interpolate_correct diverged at n={n} ({exec:?})"
    );
}

fn bench_backend(name: &str, exec: &Exec, n: usize, trials: usize, quick: bool) -> BackendRecord {
    let (x, b) = test_grids(n);
    let nc = coarse_size(n);
    let reps = reps_for(n, quick);
    let ws = Workspace::new();
    verify_equivalence(n, exec, &ws);

    // Transfer step, seed style: fresh allocations every pass.
    let mut xm = x.clone();
    let coarse_correction = Grid2d::from_fn(nc, |i, j| ((i + j) % 5) as f64 / 10.0);
    let step_unfused_alloc_s = time_best(trials, || {
        for _ in 0..reps {
            let mut r = Grid2d::zeros(n);
            residual(&xm, &b, &mut r, exec);
            let mut bc = Grid2d::zeros(nc);
            restrict_full_weighting(&r, &mut bc, exec);
            interpolate_add(&coarse_correction, black_box(&mut xm), exec);
        }
    }) / reps as f64;

    // Transfer step, this PR's hot path: fused kernels + pooled scratch.
    let mut xm = x.clone();
    let step_fused_pooled_s = time_best(trials, || {
        for _ in 0..reps {
            let mut bc = ws.acquire(nc);
            residual_restrict(&xm, &b, &mut bc, &ws, exec);
            interpolate_correct(&coarse_correction, black_box(&mut xm), exec);
        }
    }) / reps as f64;

    // Kernels only: residual + restrict with everything preallocated.
    let mut r = Grid2d::zeros(n);
    let mut bc = Grid2d::zeros(nc);
    let rr_unfused_s = time_best(trials, || {
        for _ in 0..reps {
            residual(&x, &b, black_box(&mut r), exec);
            restrict_full_weighting(&r, black_box(&mut bc), exec);
        }
    }) / reps as f64;
    let rr_fused_s = time_best(trials, || {
        for _ in 0..reps {
            residual_restrict(&x, &b, black_box(&mut bc), &ws, exec);
        }
    }) / reps as f64;

    // Interpolation kernels only.
    let mut fine = x.clone();
    let interp_reference_s = time_best(trials, || {
        for _ in 0..reps {
            interpolate_add(&bc, black_box(&mut fine), exec);
        }
    }) / reps as f64;
    let mut fine = x.clone();
    let interp_fused_s = time_best(trials, || {
        for _ in 0..reps {
            interpolate_correct(&bc, black_box(&mut fine), exec);
        }
    }) / reps as f64;

    BackendRecord {
        backend: name.to_string(),
        step_unfused_alloc_s,
        step_fused_pooled_s,
        step_speedup: step_unfused_alloc_s / step_fused_pooled_s,
        rr_unfused_s,
        rr_fused_s,
        rr_speedup: rr_unfused_s / rr_fused_s,
        interp_reference_s,
        interp_fused_s,
        interp_speedup: interp_reference_s / interp_fused_s,
    }
}

/// Sweep block-cursor band heights for the fused `residual_restrict` on
/// the pooled backend. `band = 1` is exactly the PR 1 pooled path (one
/// coarse row per task, three residual rows re-derived each).
fn bench_band_sweep(
    pool_exec: &Exec,
    backend: &str,
    n: usize,
    bands: &[usize],
    trials: usize,
    quick: bool,
) -> Vec<BandRecord> {
    let (x, b) = test_grids(n);
    let nc = coarse_size(n);
    let reps = reps_for(n, quick);
    let ws = Workspace::new();
    let mut bc = Grid2d::zeros(nc);

    let time_rr = |exec: &Exec| {
        verify_equivalence(n, exec, &ws);
        let mut bc_local = Grid2d::zeros(nc);
        time_best(trials, || {
            for _ in 0..reps {
                residual_restrict(&x, &b, black_box(&mut bc_local), &ws, exec);
            }
        }) / reps as f64
    };

    let seq_fused_s = time_rr(&Exec::seq());
    // Warm once so lease pools exist before the band=1 baseline timing.
    residual_restrict(&x, &b, &mut bc, &ws, pool_exec);

    // Time the band=1 (PR 1 pooled path) baseline first so every
    // record gets a real ratio regardless of the sweep order.
    let band1_s = time_rr(&pool_exec.clone().with_band(1));

    let mut records = Vec::new();
    for &band in bands {
        let rr_fused_s = if band == 1 {
            band1_s
        } else {
            time_rr(&pool_exec.clone().with_band(band))
        };
        records.push(BandRecord {
            n,
            backend: backend.to_string(),
            band_rows: band,
            rr_fused_s,
            speedup_vs_band1: band1_s / rr_fused_s,
            fused_par_vs_seq: seq_fused_s / rr_fused_s,
        });
        println!(
            "band,{},{},{},{:.2},{:.3},{:.3}",
            n,
            backend,
            band,
            rr_fused_s * 1e6,
            band1_s / rr_fused_s,
            seq_fused_s / rr_fused_s
        );
    }
    records
}

/// Sweep temporal-block depths for `sweeps` SOR sweeps against the
/// staged reference.
fn bench_tblock_sweep(
    name: &str,
    exec: &Exec,
    n: usize,
    sweeps: usize,
    depths: &[usize],
    trials: usize,
    quick: bool,
) -> Vec<TblockRecord> {
    let (x0, b) = test_grids(n);
    // Temporal blocking multiplies work per traversal; scale reps down.
    let reps = (reps_for(n, quick) / sweeps).max(1);
    let ws = Workspace::new();

    // Verify bitwise equality of every depth before timing.
    let mut want = x0.clone();
    sor_sweeps(&mut want, &b, 1.15, sweeps, &Exec::seq());
    for &depth in depths {
        let mut got = x0.clone();
        let mut left = sweeps;
        while left > 0 {
            let chunk = left.min(depth);
            sor_sweeps_blocked(&mut got, &b, 1.15, chunk, &ws, exec);
            left -= chunk;
        }
        assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "blocked SOR diverged at n={n} depth={depth} ({exec:?})"
        );
    }

    let mut x = x0.clone();
    let staged_s = time_best(trials, || {
        for _ in 0..reps {
            sor_sweeps(black_box(&mut x), &b, 1.15, sweeps, exec);
        }
    }) / reps as f64;

    let mut records = Vec::new();
    for &depth in depths {
        let mut x = x0.clone();
        let blocked_s = time_best(trials, || {
            for _ in 0..reps {
                let mut left = sweeps;
                while left > 0 {
                    let chunk = left.min(depth);
                    sor_sweeps_blocked(black_box(&mut x), &b, 1.15, chunk, &ws, exec);
                    left -= chunk;
                }
            }
        }) / reps as f64;
        records.push(TblockRecord {
            n,
            backend: name.to_string(),
            sweeps,
            tblock: depth,
            blocked_s,
            staged_s,
            speedup: staged_s / blocked_s,
        });
        println!(
            "tblock,{},{},{},{:.2},{:.2},{:.3}",
            n,
            name,
            depth,
            blocked_s * 1e6,
            staged_s * 1e6,
            staged_s / blocked_s
        );
    }
    records
}

/// Compare tuned-plan V-cycle times under the global default knobs
/// versus a per-level table built exactly the way the DP tuner builds
/// one: seeded n-ary search per level, coarse to fine.
fn bench_per_level_knobs(
    pool_exec: &Exec,
    backend: &str,
    n: usize,
    trials: usize,
    quick: bool,
) -> PerLevelKnobRecord {
    let level = size_level(n).expect("bench sizes are 2^k + 1");
    let fam = simple_v_family(level, &[1e5]);
    let inst = ProblemInstance::random(level, Distribution::UnbiasedUniform, 0x5EED_BE9C);
    let cache = Arc::new(DirectSolverCache::new());

    // Build the per-level table coarse-to-fine the way the DP tuner
    // does: each level's candidates timed in-table (coarser levels keep
    // their tuned knobs), seeded from the next-coarser entry.
    let mut table = KnobTable::defaults(level);
    let mut tune_evaluations = 0usize;
    let (arms, rounds, reps) = if quick { (2, 1, 1) } else { (3, 2, 3) };
    for k in 2..=level {
        let opts = KnobTunerOptions {
            level: k,
            arms,
            rounds,
            reps,
            seed: 0xBE9C ^ k as u64,
            problem: Problem::poisson(),
        };
        let result = tune_kernel_knobs_for_level(pool_exec, &opts, &table);
        tune_evaluations += result.evaluations;
        table.set(k, result.knobs);
    }

    let run = |table: &KnobTable, x: &mut Grid2d| {
        let mut ctx = ExecCtx::with_cache(pool_exec.clone(), Arc::clone(&cache))
            .with_knob_table(table.clone());
        fam.run(level, 0, x, &inst.b, &mut ctx);
    };
    // Bitwise equivalence before timing, like every other section.
    let global_table = KnobTable::defaults(level);
    let mut x_global = inst.working_grid();
    run(&global_table, &mut x_global);
    let mut x_table = inst.working_grid();
    run(&table, &mut x_table);
    assert_eq!(
        x_global.as_slice(),
        x_table.as_slice(),
        "per-level knobs diverged at n={n}"
    );

    let reps_timed = (reps_for(n, quick) / 16).max(1);
    let time_cycles = |table: &KnobTable| {
        let mut x = inst.working_grid();
        run(table, &mut x); // warm pools + factors outside timing
        time_best(trials, || {
            for _ in 0..reps_timed {
                let mut x = inst.working_grid();
                run(table, black_box(&mut x));
            }
        }) / reps_timed as f64
    };
    let global_cycle_s = time_cycles(&global_table);
    let per_level_cycle_s = time_cycles(&table);

    let record = PerLevelKnobRecord {
        n,
        backend: backend.to_string(),
        global_cycle_s,
        per_level_cycle_s,
        speedup: global_cycle_s / per_level_cycle_s,
        tune_evaluations,
        table: (2..=level)
            .map(|k| {
                let knobs = table.get(k);
                KnobTableEntry {
                    level: k,
                    band_rows: knobs.band_rows,
                    tblock: knobs.tblock,
                }
            })
            .collect(),
    };
    println!(
        "per_level,{},{},{:.2},{:.2},{:.3},{}",
        n,
        backend,
        global_cycle_s * 1e6,
        per_level_cycle_s * 1e6,
        record.speedup,
        tune_evaluations
    );
    record
}

/// Time each row kernel under forced-scalar and forced-vector policies
/// (sequential backend, so the numbers isolate the row path from
/// scheduling). Every kernel's two modes are verified bitwise equal
/// before timing — the SIMD layer's core guarantee.
fn bench_simd_sweep(n: usize, trials: usize, quick: bool) -> Vec<SimdRecord> {
    let (x, b) = test_grids(n);
    let nc = coarse_size(n);
    let reps = reps_for(n, quick);
    let e_s = Exec::seq().with_simd(SimdPolicy::Scalar);
    let e_v = Exec::seq().with_simd(SimdPolicy::Vector);
    let backend = vector_backend().to_string();
    let mut records = Vec::new();
    let mut push = |kernel: &str, scalar_s: f64, vector_s: f64| {
        println!(
            "simd,{},{},{},{:.2},{:.2},{:.3}",
            n,
            kernel,
            backend,
            scalar_s * 1e6,
            vector_s * 1e6,
            scalar_s / vector_s
        );
        records.push(SimdRecord {
            n,
            kernel: kernel.to_string(),
            vector_backend: backend.clone(),
            scalar_s,
            vector_s,
            speedup: scalar_s / vector_s,
        });
    };

    // residual
    let mut r_s = Grid2d::zeros(n);
    let mut r_v = Grid2d::zeros(n);
    residual(&x, &b, &mut r_s, &e_s);
    residual(&x, &b, &mut r_v, &e_v);
    assert_eq!(r_s.as_slice(), r_v.as_slice(), "residual diverged at n={n}");
    let time_k = |e: &Exec, out: &mut Grid2d| {
        time_best(trials, || {
            for _ in 0..reps {
                residual(&x, &b, black_box(out), e);
            }
        }) / reps as f64
    };
    push("residual", time_k(&e_s, &mut r_s), time_k(&e_v, &mut r_v));

    // restrict (full weighting of the residual)
    let mut c_s = Grid2d::zeros(nc);
    let mut c_v = Grid2d::zeros(nc);
    restrict_full_weighting(&r_s, &mut c_s, &e_s);
    restrict_full_weighting(&r_s, &mut c_v, &e_v);
    assert_eq!(c_s.as_slice(), c_v.as_slice(), "restrict diverged at n={n}");
    let time_k = |e: &Exec, out: &mut Grid2d| {
        time_best(trials, || {
            for _ in 0..reps {
                restrict_full_weighting(&r_s, black_box(out), e);
            }
        }) / reps as f64
    };
    push("restrict", time_k(&e_s, &mut c_s), time_k(&e_v, &mut c_v));

    // interpolate_correct
    let mut f_s = x.clone();
    let mut f_v = x.clone();
    interpolate_correct(&c_s, &mut f_s, &e_s);
    interpolate_correct(&c_s, &mut f_v, &e_v);
    assert_eq!(
        f_s.as_slice(),
        f_v.as_slice(),
        "interpolate diverged at n={n}"
    );
    let time_k = |e: &Exec, out: &mut Grid2d| {
        time_best(trials, || {
            for _ in 0..reps {
                interpolate_correct(&c_s, black_box(out), e);
            }
        }) / reps as f64
    };
    push(
        "interpolate_correct",
        time_k(&e_s, &mut f_s),
        time_k(&e_v, &mut f_v),
    );

    // sor_sweep (one staged red-black sweep; the stride-2 vector path)
    let mut xs = x.clone();
    let mut xv = x.clone();
    sor_sweeps(&mut xs, &b, 1.15, 2, &e_s);
    sor_sweeps(&mut xv, &b, 1.15, 2, &e_v);
    assert_eq!(xs.as_slice(), xv.as_slice(), "SOR diverged at n={n}");
    let time_k = |e: &Exec, out: &mut Grid2d| {
        time_best(trials, || {
            for _ in 0..reps {
                sor_sweeps(black_box(out), &b, 1.15, 1, e);
            }
        }) / reps as f64
    };
    push("sor_sweep", time_k(&e_s, &mut xs), time_k(&e_v, &mut xv));

    // jacobi
    let mut scratch = Grid2d::zeros(n);
    let mut xs = x.clone();
    let mut xv = x.clone();
    jacobi_sweep(&mut xs, &b, 0.8, &mut scratch, &e_s);
    jacobi_sweep(&mut xv, &b, 0.8, &mut scratch, &e_v);
    assert_eq!(xs.as_slice(), xv.as_slice(), "Jacobi diverged at n={n}");
    let time_k = |e: &Exec, out: &mut Grid2d| {
        let mut scratch = Grid2d::zeros(n);
        time_best(trials, || {
            for _ in 0..reps {
                jacobi_sweep(black_box(out), &b, 0.8, &mut scratch, e);
            }
        }) / reps as f64
    };
    push("jacobi", time_k(&e_s, &mut xs), time_k(&e_v, &mut xv));

    // l2 norm (fixed-lane reduction: scalar mode = portable lane
    // codegen, vector mode = dispatched backend; identical bits)
    assert_eq!(
        l2_norm_interior(&x, &e_s).to_bits(),
        l2_norm_interior(&x, &e_v).to_bits(),
        "norms diverged at n={n}"
    );
    let time_k = |e: &Exec| {
        time_best(trials, || {
            for _ in 0..reps {
                black_box(l2_norm_interior(black_box(&x), e));
            }
        }) / reps as f64
    };
    push("l2_norm", time_k(&e_s), time_k(&e_v));

    records
}

/// Per-operator V-cycle timing and tuned-plan divergence: the
/// `problem_sweep` section. All four canonical problems get identical
/// input data; each is verified (fused vs staged, bitwise) before
/// timing, then DP-tuned with the deterministic modeled cost so the
/// recorded plan divergence is machine-independent.
fn bench_problem_sweep(
    pool_exec: &Exec,
    n: usize,
    trials: usize,
    quick: bool,
) -> Vec<ProblemRecord> {
    let level = size_level(n).expect("bench sizes are 2^k + 1");
    let (x0, b) = test_grids(n);
    let ws = Workspace::new();
    let reps = (reps_for(n, quick) / 8).max(1);

    let problems: Vec<(&str, Problem)> = vec![
        ("poisson", Problem::poisson()),
        ("smooth", Problem::smooth_sinusoidal(n)),
        ("jump1000", Problem::jump_inclusion(n)),
        ("aniso0.01", Problem::anisotropic_canonical()),
    ];

    let mut poisson_cycle_s = 0.0;
    let mut poisson_plans: Option<TunedFamily> = None;
    let mut records = Vec::new();
    for (name, problem) in problems {
        // Verify: fused residual+restrict of this operator bitwise
        // matches the staged composition on the pooled backend.
        let op = problem.op_for(n);
        let nc = coarse_size(n);
        let mut r = Grid2d::zeros(n);
        residual_op(&op, &x0, &b, &mut r, &Exec::seq());
        let mut want = Grid2d::zeros(nc);
        restrict_full_weighting(&r, &mut want, &Exec::seq());
        let mut got = Grid2d::zeros(nc);
        residual_restrict_op(&op, &x0, &b, &mut got, &ws, pool_exec);
        assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "fused {name} kernels diverged at n={n}"
        );

        // Time one reference V cycle of this operator (fused kernels,
        // pooled backend; warm first so pools and factors exist).
        let solver = ReferenceSolver::new(MgConfig {
            exec: pool_exec.clone(),
            problem: problem.clone(),
            ..MgConfig::default()
        });
        let mut x = x0.clone();
        solver.vcycle(&mut x, &b);
        let vcycle_s = time_best(trials, || {
            for _ in 0..reps {
                solver.vcycle(black_box(&mut x), &b);
            }
        }) / reps as f64;
        if name == "poisson" {
            poisson_cycle_s = vcycle_s;
        }

        // Deterministic modeled-cost DP tune per problem: convergence
        // differs per operator, so iteration counts — and with them the
        // chosen cycle shapes — genuinely diverge.
        let opts =
            TunerOptions::quick(level, Distribution::UnbiasedUniform).with_problem(problem.clone());
        let fam = VTuner::new(opts).tune();
        let tuned_top_plans: Vec<String> = (0..fam.num_accuracies())
            .map(|i| fam.plan(level, i).describe())
            .collect();
        let diverges_from_poisson = match &poisson_plans {
            None => {
                poisson_plans = Some(fam.clone());
                false
            }
            Some(base) => base.plans != fam.plans,
        };

        println!(
            "problem,{},{},{:.2},{:.3},{},{}",
            name,
            n,
            vcycle_s * 1e6,
            vcycle_s / poisson_cycle_s,
            diverges_from_poisson,
            tuned_top_plans.join("|")
        );
        records.push(ProblemRecord {
            problem: name.to_string(),
            fingerprint: problem.fingerprint().describe(),
            n,
            vcycle_s,
            vcycle_vs_poisson: vcycle_s / poisson_cycle_s,
            tuned_top_plans,
            diverges_from_poisson,
        });
    }
    // The headline acceptance check: at least one non-constant profile
    // must tune to a different plan than constant Poisson.
    assert!(
        records.iter().any(|r| r.diverges_from_poisson),
        "no operator diverged from the Poisson plan — per-problem tuning is broken"
    );
    records
}

/// Batched multi-RHS V-cycles versus solo: the `batch_sweep` section.
/// `width` systems (distinct right-hand sides and initial guesses) go
/// through one `run_batch` cycle with each SIMD lane carrying one
/// system; the baseline runs the same `width` systems through `run`
/// one at a time. Every lane is verified bitwise equal to its solo
/// twin before timing — the batched kernels evaluate the solo scalar
/// expression per lane, so this is equality, not tolerance, at every
/// width.
fn bench_batch_sweep(
    backend: &str,
    exec: &Exec,
    n: usize,
    width: usize,
    trials: usize,
    quick: bool,
) -> SolveManyRecord {
    let level = size_level(n).expect("bench sizes are 2^k + 1");
    let reps = (reps_for(n, quick) / 8).max(1);
    let fam = simple_v_family(level, &PAPER_ACCURACIES);
    let acc_idx = fam.num_accuracies() - 1;
    let cache = Arc::new(DirectSolverCache::new());
    let ws = Arc::new(Workspace::new());
    let mut ctx =
        ExecCtx::with_cache(exec.clone(), Arc::clone(&cache)).with_workspace(Arc::clone(&ws));

    // Per-lane data: each system gets its own RHS and initial guess.
    let lane_x0 = |k: usize| {
        Grid2d::from_fn(n, |i, j| {
            ((i * 31 + j * 17 + k * 7) % 103) as f64 / 7.0 - 5.0
        })
    };
    let lane_b =
        |k: usize| Grid2d::from_fn(n, |i, j| ((i * 13 + j * 71 + k * 29) % 97) as f64 / 3.0);
    let bs: Vec<Grid2d> = (0..width).map(lane_b).collect();

    // Verify: one batched cycle is bitwise equal, per lane, to the
    // solo cycles on the same data.
    let mut solos: Vec<Grid2d> = (0..width).map(lane_x0).collect();
    for (k, x) in solos.iter_mut().enumerate() {
        fam.run(level, acc_idx, x, &bs[k], &mut ctx);
    }
    let mut xb = BatchGrid::zeros(n, width);
    let mut bb = BatchGrid::zeros(n, width);
    for (k, b) in bs.iter().enumerate() {
        xb.load_lane(k, &lane_x0(k));
        bb.load_lane(k, b);
    }
    fam.run_batch(level, acc_idx, &mut xb, &bb, &mut ctx);
    let mut got = Grid2d::zeros(n);
    for (k, solo) in solos.iter().enumerate() {
        xb.store_lane(k, &mut got);
        assert_eq!(
            got.as_slice(),
            solo.as_slice(),
            "batched lane {k} diverged from solo at n={n} width={width} on {backend}"
        );
    }

    // Time. The cycle shape is fixed by the plan, not by convergence,
    // so re-cycling a converged iterate does identical work per call.
    let mut xs = solos;
    let solo_vcycles_s = time_best(trials, || {
        for _ in 0..reps {
            for (k, x) in xs.iter_mut().enumerate() {
                fam.run(level, acc_idx, black_box(x), &bs[k], &mut ctx);
            }
        }
    }) / reps as f64;
    let batched_vcycle_s = time_best(trials, || {
        for _ in 0..reps {
            fam.run_batch(level, acc_idx, black_box(&mut xb), &bb, &mut ctx);
        }
    }) / reps as f64;

    SolveManyRecord {
        backend: backend.to_string(),
        n,
        width,
        solo_vcycles_s,
        batched_vcycle_s,
        speedup: solo_vcycles_s / batched_vcycle_s,
    }
}

/// Telemetry tax on a warm guarded solve. Three configurations run the
/// identical work — the converged iterate is re-solved, which replays
/// the open-loop tuned rung plus one residual check per call — with
/// (a) no telemetry feed attached, (b) a feed attached but the process
/// gate closed (the shipped default), and (c) the gate open in metrics
/// mode.
fn bench_telemetry_overhead(n: usize, trials: usize, quick: bool) -> TelemetryOverheadRecord {
    let level = size_level(n).expect("bench sizes are 2^k + 1");
    let problem = Problem::poisson();
    let inst = ProblemInstance::random_for(&problem, level, Distribution::UnbiasedUniform, 0x7E1E);
    let cache = Arc::new(DirectSolverCache::new());
    let workspace = Arc::new(Workspace::new());
    let fam = simple_v_family(level, &PAPER_ACCURACIES);
    let registry = obs::Registry::new();
    let feed = Arc::new(SolveTelemetry::register(&registry));

    let plain = GuardedSolver::new(problem.clone())
        .with_plan(fam.clone())
        .with_cache(Arc::clone(&cache))
        .with_workspace(Arc::clone(&workspace));
    let instrumented = GuardedSolver::new(problem)
        .with_plan(fam)
        .with_cache(cache)
        .with_workspace(workspace)
        .with_telemetry(feed);

    let tol = 1e-6;
    let mut x = inst.working_grid();
    obs::set_mode(TelemetryMode::Off);
    plain
        .solve(&mut x, &inst.b, tol)
        .expect("poisson converges on the tuned rung");

    // The disabled-path delta is nanoseconds against milliseconds of
    // solve, so this sweep takes more best-of trials than the kernel
    // sweeps to make the < 1% assertion robust to scheduler noise.
    let trials = trials.max(5);
    let reps = (reps_for(n, quick) / 4).max(2);
    let mut timed = |solver: &GuardedSolver, mode: TelemetryMode| {
        obs::set_mode(mode);
        let s = time_best(trials, || {
            for _ in 0..reps {
                solver
                    .solve(black_box(&mut x), &inst.b, tol)
                    .expect("warm re-solve stays converged");
            }
        }) / reps as f64;
        obs::set_mode(TelemetryMode::Off);
        s
    };
    let baseline_s = timed(&plain, TelemetryMode::Off);
    let gated_off_s = timed(&instrumented, TelemetryMode::Off);
    let enabled_s = timed(&instrumented, TelemetryMode::Metrics);

    TelemetryOverheadRecord {
        n,
        baseline_s,
        gated_off_s,
        enabled_s,
        gated_off_overhead: gated_off_s / baseline_s - 1.0,
        enabled_overhead: enabled_s / baseline_s - 1.0,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || petamg_core::env::bench_quick();
    let out_path =
        petamg_core::env::bench_out().unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let trials = if quick { 2 } else { 5 };
    let sizes: &[usize] = if quick {
        &[65, 513]
    } else {
        &[65, 129, 257, 513, 1025]
    };

    petamg_bench::banner(
        "kernel_fusion",
        "fused residual_restrict / interpolate_correct vs unfused reference path,\n\
         plus block-cursor band and temporal-block sweeps",
        "step = residual -> restrict -> interpolate-correct; unfused allocates\n\
         fresh grids per pass (seed behaviour), fused leases from the workspace.\n\
         band rows: band_rows=1 is the PR 1 pooled path (3 residual rows per\n\
         coarse-row task); taller bands share the rolling window.\n\
         Fused/unfused/blocked verified bitwise equal before timing.",
    );
    println!(
        "# vector_backend={} batch_width={}",
        vector_backend(),
        batch_width()
    );
    println!("n,backend,step_unfused_us,step_fused_us,step_speedup,rr_speedup,interp_speedup");

    let pool_threads = 2;
    let pool_exec = Exec::pbrt(pool_threads);
    let pool_name = format!("pbrt{pool_threads}");
    let mut size_records = Vec::new();
    for &n in sizes {
        let mut backends = Vec::new();
        for (name, exec) in [
            ("seq".to_string(), Exec::seq()),
            (pool_name.clone(), pool_exec.clone()),
        ] {
            let rec = bench_backend(&name, &exec, n, trials, quick);
            println!(
                "{},{},{:.2},{:.2},{:.3},{:.3},{:.3}",
                n,
                rec.backend,
                rec.step_unfused_alloc_s * 1e6,
                rec.step_fused_pooled_s * 1e6,
                rec.step_speedup,
                rec.rr_speedup,
                rec.interp_speedup
            );
            backends.push(rec);
        }
        size_records.push(SizeRecord { n, backends });
    }

    // Block-cursor band sweep (pooled fused residual_restrict).
    println!("#\nkind,n,backend,band_rows,rr_fused_us,speedup_vs_band1,fused_par_vs_seq");
    let bands: &[usize] = if quick {
        &[1, 8, 32]
    } else {
        &[1, 4, 8, 16, 32, 64, 128]
    };
    let band_sizes: &[usize] = if quick { &[513] } else { &[129, 513, 1025] };
    let mut band_sweep = Vec::new();
    for &n in band_sizes {
        band_sweep.extend(bench_band_sweep(
            &pool_exec, &pool_name, n, bands, trials, quick,
        ));
    }

    // Temporal-block depth sweep.
    println!("#\nkind,n,backend,tblock,blocked_us,staged_us,speedup");
    let depths: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };
    let tblock_sizes: &[usize] = if quick { &[513] } else { &[129, 513, 1025] };
    let tblock_sweeps = 4;
    let mut tblock_sweep = Vec::new();
    for &n in tblock_sizes {
        for (name, exec) in [
            ("seq", Exec::seq()),
            (pool_name.as_str(), pool_exec.clone()),
        ] {
            tblock_sweep.extend(bench_tblock_sweep(
                name,
                &exec,
                n,
                tblock_sweeps,
                depths,
                trials,
                quick,
            ));
        }
    }

    // Per-level knob tables vs one global setting, on tuned-plan cycles.
    println!("#\nkind,n,backend,global_cycle_us,per_level_cycle_us,speedup,tune_evals");
    let knob_sizes: &[usize] = if quick { &[129] } else { &[129, 513, 1025] };
    let mut per_level_knobs = Vec::new();
    for &n in knob_sizes {
        per_level_knobs.push(bench_per_level_knobs(
            &pool_exec, &pool_name, n, trials, quick,
        ));
    }

    // Scalar-vs-vector row-path sweep (per kernel).
    println!("#\nkind,n,kernel,vector_backend,scalar_us,vector_us,speedup");
    let simd_sizes: &[usize] = if quick {
        &[129, 513]
    } else {
        &[129, 513, 1025]
    };
    let mut simd_sweep = Vec::new();
    for &n in simd_sizes {
        simd_sweep.extend(bench_simd_sweep(n, trials, quick));
    }

    // Operator-family sweep: per-problem V-cycle cost + tuned-plan
    // divergence (deterministic modeled tune per problem).
    println!("#\nkind,problem,n,vcycle_us,vs_poisson,diverges,top_plans");
    let problem_n = if quick { 65 } else { 129 };
    let problem_sweep = bench_problem_sweep(&pool_exec, problem_n, trials, quick);

    // Batched multi-RHS V-cycles vs solo, per backend and width.
    println!("#\nkind,n,backend,width,solo_us,batched_us,speedup");
    let batch_sizes: &[usize] = if quick { &[129] } else { &[129, 513, 1025] };
    let mut batch_sweep = Vec::new();
    for &n in batch_sizes {
        for (name, exec) in [
            ("seq", Exec::seq()),
            (pool_name.as_str(), pool_exec.clone()),
        ] {
            for width in [4, 8] {
                let rec = bench_batch_sweep(name, &exec, n, width, trials, quick);
                println!(
                    "batch,{},{},{},{:.2},{:.2},{:.3}",
                    rec.n,
                    rec.backend,
                    rec.width,
                    rec.solo_vcycles_s * 1e6,
                    rec.batched_vcycle_s * 1e6,
                    rec.speedup
                );
                batch_sweep.push(rec);
            }
        }
    }

    // Telemetry tax: attached-but-gated-off must be free.
    println!("#\nkind,n,baseline_us,gated_off_us,enabled_us,off_overhead,enabled_overhead");
    let mut telemetry_overhead = Vec::new();
    for &n in &[65usize, 513] {
        let rec = bench_telemetry_overhead(n, trials, quick);
        println!(
            "telemetry,{},{:.2},{:.2},{:.2},{:+.4},{:+.4}",
            rec.n,
            rec.baseline_s * 1e6,
            rec.gated_off_s * 1e6,
            rec.enabled_s * 1e6,
            rec.gated_off_overhead,
            rec.enabled_overhead
        );
        if rec.n == 513 {
            assert!(
                rec.gated_off_overhead < 0.01,
                "attached-but-disabled telemetry must cost < 1% at n=513 \
                 (measured {:+.4})",
                rec.gated_off_overhead
            );
        }
        telemetry_overhead.push(rec);
    }
    // Leave the gate where the environment asked for it.
    obs::set_mode(petamg_core::env::telemetry_mode());

    let report = Report {
        bench: "kernel_fusion".to_string(),
        quick,
        trials,
        reps_scale: "~16M points touched per trial".to_string(),
        vector_backend: vector_backend().to_string(),
        batch_width: batch_width(),
        sizes: size_records,
        band_sweep,
        tblock_sweep,
        per_level_knobs,
        simd_sweep,
        problem_sweep,
        batch_sweep,
        telemetry_overhead,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    println!("# wrote {out_path}");
}
