//! Shared machinery for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper and prints the same rows/series the paper plots (CSV-style on
//! stdout, with a header describing the experiment). Absolute numbers
//! differ from the paper's 2009 testbeds; the *shape* (who wins, by
//! roughly what factor, where crossovers fall) is the reproduction
//! target — see EXPERIMENTS.md.
//!
//! Common environment knobs:
//! * `PETAMG_MAX_LEVEL` — largest grid level for sweeps (default varies
//!   per figure; level `k` means `N = 2^k + 1`).
//! * `PETAMG_NUM_THREADS` — worker threads for the in-house pool.

use petamg_core::accuracy::ratio_of_errors;
use petamg_core::cost::{MachineProfile, OpCounts};
use petamg_core::plan::{simple_v_family, ExecCtx, TunedFamily, TunedFmgFamily};
use petamg_core::training::{Distribution, ProblemInstance};
use petamg_core::tuner::{FmgTuner, TunerOptions};
use petamg_grid::{l2_diff, Exec};
use petamg_solvers::{DirectSolverCache, MgConfig, ReferenceSolver};
use std::sync::Arc;
use std::time::Instant;

/// Read an environment override for the maximum sweep level
/// (`PETAMG_MAX_LEVEL`, parsed by the one env module in `petamg-obs`).
pub fn env_max_level(default: usize) -> usize {
    petamg_core::env::max_level().unwrap_or(default)
}

/// Print the standard experiment banner.
pub fn banner(figure: &str, title: &str, notes: &str) {
    println!("# {figure}: {title}");
    for line in notes.lines() {
        println!("# {line}");
    }
    println!("#");
}

/// Grid size at level `k`.
pub fn n_of(level: usize) -> usize {
    (1usize << level) + 1
}

/// Best-of-`trials` wall-clock timing of `f` (seconds).
pub fn time_best<F: FnMut()>(trials: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Analytic op counts of one reference V cycle at `level` (1 pre + 1
/// post relaxation per level, residual+restrict+interp per level,
/// direct at level 1).
pub fn reference_v_ops(level: usize) -> OpCounts {
    let mut ops = OpCounts::new(level);
    for k in (2..=level).rev() {
        let l = ops.level_mut(k);
        l.relax_sweeps += 2;
        l.residuals += 1;
        l.restricts += 1;
        l.interps += 1;
    }
    ops.level_mut(1).direct_solves += 1;
    ops
}

/// Analytic op counts of one reference full-multigrid pass at `level`
/// (problem restriction + interpolation per level, one V cycle per
/// level on the way up, direct at the base).
pub fn reference_fmg_ops(level: usize) -> OpCounts {
    let mut ops = OpCounts::new(level);
    for k in 2..=level {
        // Problem restriction/interpolation bookkeeping (priced like the
        // residual-path transfers).
        ops.level_mut(k).restricts += 1;
        ops.level_mut(k).interps += 1;
        ops.add(&reference_v_ops(k));
    }
    ops.level_mut(1).direct_solves += 1;
    ops
}

/// Iterations of the reference V cycle to reach `target` on `inst`
/// (requires `x_opt` precomputed).
pub fn reference_v_iters(
    inst: &ProblemInstance,
    target: f64,
    cache: &Arc<DirectSolverCache>,
    exec: &Exec,
) -> usize {
    let x_opt = inst.x_opt().expect("x_opt precomputed");
    let e0 = l2_diff(&inst.x0, x_opt, exec);
    let solver = ReferenceSolver::with_cache(
        MgConfig {
            exec: exec.clone(),
            ..MgConfig::default()
        },
        Arc::clone(cache),
    );
    let mut x = inst.working_grid();
    solver
        .solve_v_until(&mut x, &inst.b, 500, |x| {
            ratio_of_errors(e0, l2_diff(x, x_opt, exec)) >= target
        })
        .cycles()
}

/// Passes (1 FMG + V cycles) of the reference FMG solver to reach
/// `target`.
pub fn reference_fmg_iters(
    inst: &ProblemInstance,
    target: f64,
    cache: &Arc<DirectSolverCache>,
    exec: &Exec,
) -> usize {
    let x_opt = inst.x_opt().expect("x_opt precomputed");
    let e0 = l2_diff(&inst.x0, x_opt, exec);
    let solver = ReferenceSolver::with_cache(
        MgConfig {
            exec: exec.clone(),
            ..MgConfig::default()
        },
        Arc::clone(cache),
    );
    let mut x = inst.working_grid();
    solver
        .solve_fmg_until(&mut x, &inst.b, 500, |x| {
            ratio_of_errors(e0, l2_diff(x, x_opt, exec)) >= target
        })
        .cycles()
}

/// Op counts of the convergence test an *iterated* reference solver must
/// run after every cycle (one fine-grid residual + norm; the tuned plans
/// are open-loop and need none — part of the paper's pitch).
fn convergence_check_ops(level: usize, iters: usize) -> OpCounts {
    let mut ops = OpCounts::new(level);
    ops.level_mut(level).residuals += iters as u64;
    ops
}

/// Modeled cost (seconds) of the reference V algorithm solving `inst`
/// to `target` on `profile`, including the per-cycle convergence test.
pub fn reference_v_cost(
    profile: &MachineProfile,
    inst: &ProblemInstance,
    target: f64,
    cache: &Arc<DirectSolverCache>,
) -> f64 {
    let exec = Exec::seq();
    let iters = reference_v_iters(inst, target, cache, &exec);
    profile.time(&reference_v_ops(inst.level)) * iters as f64
        + profile.time(&convergence_check_ops(inst.level, iters))
}

/// Modeled cost (seconds) of the reference FMG algorithm (one FMG pass
/// then V cycles) solving `inst` to `target` on `profile`, including
/// the per-pass convergence test.
pub fn reference_fmg_cost(
    profile: &MachineProfile,
    inst: &ProblemInstance,
    target: f64,
    cache: &Arc<DirectSolverCache>,
) -> f64 {
    let exec = Exec::seq();
    let passes = reference_fmg_iters(inst, target, cache, &exec);
    let mut total = profile.time(&reference_fmg_ops(inst.level));
    if passes > 1 {
        total += profile.time(&reference_v_ops(inst.level)) * (passes - 1) as f64;
    }
    total + profile.time(&convergence_check_ops(inst.level, passes))
}

/// Modeled cost of a tuned V family solving `inst` to `target`.
pub fn tuned_v_cost(
    profile: &MachineProfile,
    family: &TunedFamily,
    inst: &ProblemInstance,
    target: f64,
    cache: &Arc<DirectSolverCache>,
) -> f64 {
    let exec = Exec::seq();
    let mut ctx = ExecCtx::with_cache(exec, Arc::clone(cache));
    let mut x = inst.working_grid();
    family.run(
        inst.level,
        family.acc_index_for(target),
        &mut x,
        &inst.b,
        &mut ctx,
    );
    profile.time(&ctx.ops)
}

/// Modeled cost of a tuned FMG family solving `inst` to `target`.
pub fn tuned_fmg_cost(
    profile: &MachineProfile,
    family: &TunedFmgFamily,
    inst: &ProblemInstance,
    target: f64,
    cache: &Arc<DirectSolverCache>,
) -> f64 {
    let exec = Exec::seq();
    let mut ctx = ExecCtx::with_cache(exec, Arc::clone(cache));
    let mut x = inst.working_grid();
    family.run(
        inst.level,
        family.v.acc_index_for(target),
        &mut x,
        &inst.b,
        &mut ctx,
    );
    profile.time(&ctx.ops)
}

/// Tune V and FMG families for one profile/distribution (modeled,
/// deterministic).
pub fn tune_families(
    profile: &MachineProfile,
    dist: Distribution,
    max_level: usize,
) -> (TunedFamily, TunedFmgFamily) {
    let opts = TunerOptions::modeled(max_level, dist, profile.clone());
    let fmg = FmgTuner::new(opts).tune();
    (fmg.v.clone(), fmg)
}

/// Shared driver for Figs 10–13: relative modeled time (vs reference V)
/// of the four algorithms, per machine profile and size.
pub fn relative_performance_figure(figure: &str, dist: Distribution, target: f64) {
    let max_level = env_max_level(9);
    banner(
        figure,
        &format!(
            "relative time vs reference V cycle, {} data, accuracy {:.0e}",
            dist.name(),
            target
        ),
        "Substitution: the paper's three physical testbeds are modeled machine\n\
         profiles (see DESIGN.md §2). Columns: relative modeled time (lower is\n\
         better); reference V = 1.0 by construction. Reference (iterated)\n\
         solvers are charged one fine-grid residual per cycle for their\n\
         stopping test; tuned plans are open-loop and need none.",
    );
    println!("machine,N,reference_v,reference_fmg,autotuned_v,autotuned_fmg");
    for profile in MachineProfile::all_testbeds() {
        let (v_fam, fmg_fam) = tune_families(&profile, dist, max_level);
        let cache = Arc::new(DirectSolverCache::new());
        let exec = Exec::seq();
        for level in 3..=max_level {
            let mut inst = ProblemInstance::random(level, dist, 0xF1675 + level as u64);
            inst.ensure_x_opt(&exec, &cache);
            let ref_v = reference_v_cost(&profile, &inst, target, &cache);
            let ref_fmg = reference_fmg_cost(&profile, &inst, target, &cache);
            let tun_v = tuned_v_cost(&profile, &v_fam, &inst, target, &cache);
            let tun_fmg = tuned_fmg_cost(&profile, &fmg_fam, &inst, target, &cache);
            println!(
                "{},{},{:.3},{:.3},{:.3},{:.3}",
                profile.name,
                n_of(level),
                1.0,
                ref_fmg / ref_v,
                tun_v / ref_v,
                tun_fmg / ref_v
            );
        }
    }
    println!(
        "# paper shape check: autotuned <= reference everywhere; largest wins at small N\n\
         # (direct shortcut) and at coarse-cache machines for large N."
    );
}

/// A V-family equivalent of the reference solver (for op counting).
pub fn reference_family(max_level: usize) -> TunedFamily {
    simple_v_family(max_level, &[1e30])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_ops_match_executed_counts() {
        // The analytic reference-V op counts must equal what the
        // executor records for the hand-built simple family.
        let level = 5;
        let fam = simple_v_family(level, &[1e5]);
        let inst = ProblemInstance::random(level, Distribution::UnbiasedUniform, 3);
        let cache = Arc::new(DirectSolverCache::new());
        let mut ctx = ExecCtx::with_cache(Exec::seq(), cache);
        let mut x = inst.working_grid();
        fam.run(level, 0, &mut x, &inst.b, &mut ctx);
        assert_eq!(ctx.ops, reference_v_ops(level));
    }

    #[test]
    fn reference_iters_reasonable() {
        let exec = Exec::seq();
        let cache = Arc::new(DirectSolverCache::new());
        let mut inst = ProblemInstance::random(5, Distribution::UnbiasedUniform, 8);
        inst.ensure_x_opt(&exec, &cache);
        let v = reference_v_iters(&inst, 1e5, &cache, &exec);
        assert!((2..30).contains(&v), "V iters {v}");
        let f = reference_fmg_iters(&inst, 1e5, &cache, &exec);
        assert!(f <= v + 1, "FMG passes {f} vs V iters {v}");
    }

    #[test]
    fn fmg_ops_superset_of_v_ops() {
        let v = reference_v_ops(6);
        let f = reference_fmg_ops(6);
        assert!(f.total_relax_sweeps() > v.total_relax_sweeps());
        assert!(f.total_direct_solves() >= v.total_direct_solves());
    }

    #[test]
    fn env_max_level_parses_and_clamps() {
        // No env set in tests: default returned.
        assert_eq!(env_max_level(7), 7);
    }
}
