//! Work-stealing runtime benchmarks: our Cilk-style pool vs rayon vs
//! sequential on the shapes multigrid actually uses (row sweeps), plus
//! raw join/scope overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use petamg_runtime::{join, parallel_for, scope, ThreadPool};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
}

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_fib18");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let pool = ThreadPool::new(2);
    group.bench_function("pbrt", |bench| {
        bench.iter(|| pool.install(|| black_box(fib(18))));
    });
    group.bench_function("rayon", |bench| {
        fn rfib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                let (a, b) = rayon::join(|| rfib(n - 1), || rfib(n - 2));
                a + b
            }
        }
        bench.iter(|| black_box(rfib(18)));
    });
    group.bench_function("sequential", |bench| {
        // black_box the *input* too, or LLVM constant-folds the whole
        // recursion away.
        bench.iter(|| black_box(fib_seq(black_box(18))));
    });
    group.finish();
}

fn bench_parallel_for(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_for_100k");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let pool = ThreadPool::new(2);
    let sums: Vec<AtomicU64> = (0..100_000).map(|_| AtomicU64::new(0)).collect();
    group.bench_function("pbrt_grain256", |bench| {
        bench.iter(|| {
            pool.install(|| {
                parallel_for(100_000, 256, &|i| {
                    sums[i].fetch_add(1, Ordering::Relaxed);
                })
            })
        });
    });
    group.bench_function("rayon", |bench| {
        use rayon::prelude::*;
        bench.iter(|| {
            (0..100_000usize)
                .into_par_iter()
                .with_min_len(256)
                .for_each(|i| {
                    sums[i].fetch_add(1, Ordering::Relaxed);
                })
        });
    });
    group.bench_function("sequential", |bench| {
        bench.iter(|| {
            for s in sums.iter() {
                s.fetch_add(1, Ordering::Relaxed);
            }
        });
    });
    group.finish();
}

fn bench_scope_spawn(c: &mut Criterion) {
    let mut group = c.benchmark_group("scope_spawn_64");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let pool = ThreadPool::new(2);
    group.bench_function("pbrt", |bench| {
        bench.iter(|| {
            pool.install(|| {
                let counter = AtomicU64::new(0);
                scope(|s| {
                    for _ in 0..64 {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                black_box(counter.load(Ordering::Relaxed))
            })
        });
    });
    group.finish();
}

criterion_group!(benches, bench_join, bench_parallel_for, bench_scope_spawn);
criterion_main!(benches);
