//! Band-Cholesky benchmarks: factorization scaling (the O(N⁴) entry of
//! the complexity table) and the factor-cache ablation (DPBSV refactors
//! every call; our tuned solver caches per grid size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use petamg_grid::Grid2d;
use petamg_linalg::{assemble_poisson_band, PoissonDirect};
use petamg_solvers::{direct_solve_uncached, DirectSolverCache};
use std::hint::black_box;
use std::time::Duration;

fn bench_factorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("band_cholesky_factor");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for n in [33usize, 65, 129] {
        let a = assemble_poisson_band(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.cholesky().expect("SPD")));
        });
    }
    group.finish();
}

fn bench_solve_with_cached_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("band_cholesky_solve");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [33usize, 65, 129] {
        let solver = PoissonDirect::new(n).expect("SPD");
        let b = Grid2d::from_fn(n, |i, j| ((i * 7 + j * 3) % 23) as f64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let mut x = Grid2d::zeros(n);
            bench.iter(|| solver.solve(black_box(&mut x), &b));
        });
    }
    group.finish();
}

fn bench_cache_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: cached vs re-computed factorization.
    let mut group = c.benchmark_group("factor_cache_ablation_65");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = 65;
    let b = Grid2d::from_fn(n, |i, j| ((i * 7 + j * 3) % 23) as f64);
    let cache = DirectSolverCache::new();
    let _ = cache.get(n); // warm
    group.bench_function("cached", |bench| {
        let mut x = Grid2d::zeros(n);
        bench.iter(|| cache.solve(black_box(&mut x), &b));
    });
    group.bench_function("uncached_dpbsv_style", |bench| {
        let mut x = Grid2d::zeros(n);
        bench.iter(|| direct_solve_uncached(black_box(&mut x), &b));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_factorization,
    bench_solve_with_cached_factor,
    bench_cache_ablation
);
criterion_main!(benches);
