//! Solver-level benchmarks and the paper's design-choice ablations:
//! SOR vs weighted Jacobi (§2.3), in-cycle ω choice (1.15), V vs W vs
//! FMG cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use petamg_core::accuracy::ratio_of_errors;
use petamg_core::training::{Distribution, ProblemInstance};
use petamg_grid::{l2_diff, Exec, Grid2d};
use petamg_solvers::{jacobi_sweep, sor_sweep, DirectSolverCache, MgConfig, ReferenceSolver};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycles_257");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let inst = ProblemInstance::random(8, Distribution::UnbiasedUniform, 1);
    let cache = Arc::new(DirectSolverCache::new());
    let v = ReferenceSolver::with_cache(MgConfig::default(), Arc::clone(&cache));
    let w = ReferenceSolver::with_cache(
        MgConfig {
            gamma: 2,
            ..MgConfig::default()
        },
        Arc::clone(&cache),
    );
    group.bench_function("vcycle", |bench| {
        let mut x = inst.working_grid();
        bench.iter(|| v.vcycle(black_box(&mut x), &inst.b));
    });
    group.bench_function("wcycle", |bench| {
        let mut x = inst.working_grid();
        bench.iter(|| w.vcycle(black_box(&mut x), &inst.b));
    });
    group.bench_function("fmg_pass", |bench| {
        let mut x = inst.working_grid();
        bench.iter(|| v.fmg(black_box(&mut x), &inst.b));
    });
    group.finish();
}

fn bench_sor_vs_jacobi(c: &mut Criterion) {
    // §2.3 ablation (per-sweep cost side; the error-reduction side is a
    // unit test in petamg-solvers): the two sweeps should cost about the
    // same, which is why error reduction decides the choice.
    let mut group = c.benchmark_group("relaxation_ablation_257");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let inst = ProblemInstance::random(8, Distribution::UnbiasedUniform, 2);
    let exec = Exec::seq();
    group.bench_function("sor_sweep", |bench| {
        let mut x = inst.working_grid();
        bench.iter(|| sor_sweep(black_box(&mut x), &inst.b, 1.15, &exec));
    });
    group.bench_function("jacobi_sweep", |bench| {
        let mut x = inst.working_grid();
        let mut scratch = Grid2d::zeros(x.n());
        bench.iter(|| jacobi_sweep(black_box(&mut x), &inst.b, 2.0 / 3.0, &mut scratch, &exec));
    });
    group.finish();
}

fn bench_omega_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: in-cycle ω (paper fixes 1.15). Time-to-1e3 on
    // a 65x65 problem under different in-cycle weights.
    let mut group = c.benchmark_group("omega_ablation_solve_to_1e3");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let exec = Exec::seq();
    let cache = Arc::new(DirectSolverCache::new());
    let mut inst = ProblemInstance::random(6, Distribution::UnbiasedUniform, 3);
    let x_opt = inst.ensure_x_opt(&exec, &cache).clone();
    let e0 = l2_diff(&inst.x0, &x_opt, &exec);
    for omega in [1.0f64, 1.15, 1.5] {
        let solver = ReferenceSolver::with_cache(
            MgConfig {
                omega,
                ..MgConfig::default()
            },
            Arc::clone(&cache),
        );
        group.bench_with_input(BenchmarkId::from_parameter(omega), &omega, |bench, _| {
            bench.iter(|| {
                let mut x = inst.working_grid();
                solver.solve_v_until(&mut x, &inst.b, 100, |x| {
                    ratio_of_errors(e0, l2_diff(x, &x_opt, &exec)) >= 1e3
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cycles,
    bench_sor_vs_jacobi,
    bench_omega_ablation
);
criterion_main!(benches);
