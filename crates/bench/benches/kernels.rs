//! Micro-benchmarks of the grid kernels across execution backends, plus
//! the grain-size ablation (the PetaBricks "block size" tunable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use petamg_grid::{interpolate_add, residual, restrict_full_weighting, Exec, Grid2d};
use petamg_solvers::sor_sweep;
use std::hint::black_box;
use std::time::Duration;

fn test_grids(n: usize) -> (Grid2d, Grid2d, Grid2d) {
    let x = Grid2d::from_fn(n, |i, j| ((i * 31 + j * 17) % 103) as f64 / 7.0);
    let b = Grid2d::from_fn(n, |i, j| ((i * 13 + j * 71) % 97) as f64 / 3.0);
    let r = Grid2d::zeros(n);
    (x, b, r)
}

fn backends() -> Vec<(&'static str, Exec)> {
    vec![
        ("seq", Exec::seq()),
        ("pbrt2", Exec::pbrt(2)),
        ("rayon", Exec::rayon()),
    ]
}

fn bench_relax(c: &mut Criterion) {
    let mut group = c.benchmark_group("relax_sweep");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [129usize, 513] {
        let (x, b, _) = test_grids(n);
        group.throughput(Throughput::Elements(((n - 2) * (n - 2)) as u64));
        for (name, exec) in backends() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bench, _| {
                let mut x = x.clone();
                bench.iter(|| sor_sweep(black_box(&mut x), &b, 1.15, &exec));
            });
        }
    }
    group.finish();
}

fn bench_residual(c: &mut Criterion) {
    let mut group = c.benchmark_group("residual");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [129usize, 513] {
        let (x, b, mut r) = test_grids(n);
        for (name, exec) in backends() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bench, _| {
                bench.iter(|| residual(&x, &b, black_box(&mut r), &exec));
            });
        }
    }
    group.finish();
}

fn bench_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfers");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let n = 513;
    let nc = (n - 1) / 2 + 1;
    let (fine, _, _) = test_grids(n);
    let mut coarse = Grid2d::zeros(nc);
    let exec = Exec::seq();
    group.bench_function("restrict_513", |bench| {
        bench.iter(|| restrict_full_weighting(&fine, black_box(&mut coarse), &exec));
    });
    let mut fine_out = Grid2d::zeros(n);
    group.bench_function("interpolate_513", |bench| {
        bench.iter(|| interpolate_add(&coarse, black_box(&mut fine_out), &exec));
    });
    group.finish();
}

fn bench_grain_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: grain size for parallel stencil sweeps.
    let mut group = c.benchmark_group("grain_ablation_relax_513");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let n = 513;
    let (x, b, _) = test_grids(n);
    for grain in [1usize, 4, 16, 64, 256] {
        let exec = Exec::pbrt(2).with_grain(grain);
        group.bench_with_input(BenchmarkId::from_parameter(grain), &grain, |bench, _| {
            let mut x = x.clone();
            bench.iter(|| sor_sweep(black_box(&mut x), &b, 1.15, &exec));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_relax,
    bench_residual,
    bench_transfers,
    bench_grain_ablation
);
criterion_main!(benches);
