//! Tuning-cost benchmarks: how long the DP autotuner itself takes
//! (modeled mode), plus the discrete-vs-Pareto ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use petamg_core::training::Distribution;
use petamg_core::tuner::{ParetoTuner, TunerOptions, VTuner};
use std::hint::black_box;
use std::time::Duration;

fn bench_dp_tune(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_tune_modeled");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for max_level in [4usize, 5] {
        group.bench_function(format!("level_{max_level}"), |bench| {
            bench.iter(|| {
                let tuner = VTuner::new(TunerOptions::quick(
                    max_level,
                    Distribution::UnbiasedUniform,
                ));
                black_box(tuner.tune())
            });
        });
    }
    group.finish();
}

fn bench_discrete_vs_pareto(c: &mut Criterion) {
    // DESIGN.md ablation: the discrete-accuracy DP vs the full
    // Pareto-set DP (the paper's approximation argument §2.3).
    let mut group = c.benchmark_group("discrete_vs_pareto_level4");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("discrete", |bench| {
        bench.iter(|| {
            let tuner = VTuner::new(TunerOptions::quick(4, Distribution::UnbiasedUniform));
            black_box(tuner.tune())
        });
    });
    group.bench_function("pareto", |bench| {
        bench.iter(|| {
            let mut tuner = ParetoTuner::new(TunerOptions::quick(4, Distribution::UnbiasedUniform));
            tuner.max_sor_probe = 64;
            tuner.max_recurse_probe = 6;
            black_box(tuner.tune())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dp_tune, bench_discrete_vs_pareto);
criterion_main!(benches);
