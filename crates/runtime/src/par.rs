//! Grain-controlled parallel loops built from `join` by recursive range
//! splitting — the shape the PetaBricks compiler generates for data
//! parallel rules (block sizes being one of its tunable parameters).

use crate::join;

/// Run `body(i)` for every `i in 0..len`, splitting the index space in
/// half recursively until blocks are at most `grain` long.
///
/// `grain` trades scheduling overhead against load balance; it maps onto
/// the PetaBricks "block size" tunable. A `grain` of zero is treated as 1.
pub fn parallel_for<F>(len: usize, grain: usize, body: &F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_range(0, len, grain.max(1), body);
}

fn parallel_for_range<F>(lo: usize, hi: usize, grain: usize, body: &F)
where
    F: Fn(usize) + Sync,
{
    if hi - lo <= grain {
        for i in lo..hi {
            body(i);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    join(
        || parallel_for_range(lo, mid, grain, body),
        || parallel_for_range(mid, hi, grain, body),
    );
}

/// Parallel loop over disjoint mutable chunks of a slice: the slice is
/// split recursively (safe `split_at_mut`) down to `grain`-sized pieces
/// and `body(offset, chunk)` is invoked on each.
pub(crate) fn parallel_for_slice_core<T, F>(data: &mut [T], offset: usize, grain: usize, body: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.len() <= grain {
        body(offset, data);
        return;
    }
    let mid = data.len() / 2;
    let (left, right) = data.split_at_mut(mid);
    join(
        || parallel_for_slice_core(left, offset, grain, body),
        || parallel_for_slice_core(right, offset + mid, grain, body),
    );
}

/// Parallel fold + reduce over `0..len`: each block folds locally with
/// `fold`, block results combine with `reduce`. Deterministic shape
/// (the reduction tree mirrors the splitting tree), so floating-point
/// reductions are reproducible run-to-run for a fixed `grain`.
pub fn parallel_reduce<T, F, R>(len: usize, grain: usize, identity: T, fold: &F, reduce: &R) -> T
where
    T: Send + Sync + Clone,
    F: Fn(T, usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    parallel_reduce_range(0, len, grain.max(1), &identity, fold, reduce)
}

fn parallel_reduce_range<T, F, R>(
    lo: usize,
    hi: usize,
    grain: usize,
    identity: &T,
    fold: &F,
    reduce: &R,
) -> T
where
    T: Send + Sync + Clone,
    F: Fn(T, usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    if hi - lo <= grain {
        let mut acc = identity.clone();
        for i in lo..hi {
            acc = fold(acc, i);
        }
        return acc;
    }
    let mid = lo + (hi - lo) / 2;
    let (left, right) = join(
        || parallel_reduce_range(lo, mid, grain, identity, fold, reduce),
        || parallel_reduce_range(mid, hi, grain, identity, fold, reduce),
    );
    reduce(left, right)
}

/// Sum `f(i)` over `0..len` with a deterministic reduction tree.
pub fn parallel_for_reduce_sum<F>(len: usize, grain: usize, f: &F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    parallel_reduce(len, grain, 0.0f64, &|acc, i| acc + f(i), &|a, b| a + b)
}

/// Max of `f(i)` over `0..len` (NEG_INFINITY for the empty range).
pub fn parallel_for_reduce_max<F>(len: usize, grain: usize, f: &F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    parallel_reduce(
        len,
        grain,
        f64::NEG_INFINITY,
        &|acc: f64, i| acc.max(f(i)),
        &|a, b| a.max(b),
    )
}

/// Extension trait giving slices a pool-free parallel chunk iterator that
/// routes through the global pool.
pub trait ParallelForExt<T: Send> {
    /// Apply `body(offset, chunk)` over disjoint `grain`-sized chunks.
    fn par_chunks_apply<F>(&mut self, grain: usize, body: F)
    where
        F: Fn(usize, &mut [T]) + Sync;
}

impl<T: Send> ParallelForExt<T> for [T] {
    fn par_chunks_apply<F>(&mut self, grain: usize, body: F)
    where
        F: Fn(usize, &mut [T]) + Sync,
    {
        parallel_for_slice_core(self, 0, grain.max(1), &body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_visits_every_index_once() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            parallel_for(1000, 16, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_and_tiny() {
        let pool = ThreadPool::new(2);
        pool.install(|| {
            parallel_for(0, 8, &|_| panic!("must not be called"));
            let hit = AtomicUsize::new(0);
            parallel_for(1, 8, &|i| {
                assert_eq!(i, 0);
                hit.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hit.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn parallel_for_slice_partitions_exactly() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u32; 777];
        pool.parallel_for_slice(&mut data, 10, |off, chunk| {
            assert!(chunk.len() <= 10);
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (off + i) as u32;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn parallel_reduce_sums_correctly() {
        let pool = ThreadPool::new(2);
        let total = pool
            .install(|| parallel_reduce(10_001, 64, 0u64, &|acc, i| acc + i as u64, &|a, b| a + b));
        assert_eq!(total, (0..10_001u64).sum::<u64>());
    }

    #[test]
    fn parallel_reduce_deterministic_shape() {
        // Floating point: same grain -> bit-identical result across runs.
        let pool = ThreadPool::new(4);
        let run = || {
            pool.install(|| {
                parallel_reduce(
                    4096,
                    32,
                    0.0f64,
                    &|acc, i| acc + 1.0 / (1.0 + i as f64),
                    &|a, b| a + b,
                )
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn par_chunks_apply_uses_global_pool() {
        let mut data = [1u8; 100];
        data.par_chunks_apply(7, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn grain_zero_is_sanitized() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        pool.install(|| {
            parallel_for(10, 0, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }
}
