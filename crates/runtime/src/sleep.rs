//! Idle-worker parking.
//!
//! Workers that repeatedly find no work go to sleep on a condition
//! variable. Producers `tickle` the sleep state whenever they make work
//! available. The protocol must not lose wakeups; we use the standard
//! event-counter scheme:
//!
//! 1. the worker registers itself as a sleeper (`sleepers += 1`),
//! 2. reads the event counter (its *ticket*),
//! 3. re-scans all queues one final time,
//! 4. sleeps only if the counter is still equal to its ticket.
//!
//! A producer that publishes work afterwards bumps the counter under the
//! lock and notifies, so either the worker's final scan sees the work or
//! the ticket comparison fails. A 10ms wait timeout is kept as a backstop
//! so that even a reasoning error here degrades to latency, not deadlock.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::time::Duration;

const SLEEP_TIMEOUT: Duration = Duration::from_millis(10);

pub(crate) struct Sleep {
    sleepers: AtomicUsize,
    counter: Mutex<u64>,
    condvar: Condvar,
}

impl Sleep {
    pub(crate) fn new() -> Self {
        Sleep {
            sleepers: AtomicUsize::new(0),
            counter: Mutex::new(0),
            condvar: Condvar::new(),
        }
    }

    /// Begin the sleep protocol: register as a sleeper and take a ticket.
    /// Callers must re-check for work after this and then either call
    /// [`Sleep::sleep`] or [`Sleep::cancel`].
    pub(crate) fn start_looking(&self) -> u64 {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        // Pair with the SeqCst accesses in `tickle`: after this fence the
        // final queue re-scan is ordered after the sleeper registration.
        fence(Ordering::SeqCst);
        *self.counter.lock()
    }

    /// Abort the protocol because work was found on the final scan.
    pub(crate) fn cancel(&self) {
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Park until a producer tickles (or the backstop timeout elapses).
    pub(crate) fn sleep(&self, ticket: u64) {
        {
            let mut counter = self.counter.lock();
            if *counter == ticket {
                self.condvar.wait_for(&mut counter, SLEEP_TIMEOUT);
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Announce that new work is available. Cheap when nobody sleeps
    /// (a single atomic load), which keeps the `join` hot path fast.
    pub(crate) fn tickle(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let mut counter = self.counter.lock();
            *counter = counter.wrapping_add(1);
            drop(counter);
            self.condvar.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn tickle_wakes_sleeper_quickly() {
        let sleep = Arc::new(Sleep::new());
        let s2 = Arc::clone(&sleep);
        let start = Instant::now();
        let h = std::thread::spawn(move || {
            let ticket = s2.start_looking();
            s2.sleep(ticket);
        });
        std::thread::sleep(Duration::from_millis(2));
        sleep.tickle();
        h.join().unwrap();
        // Must be well under many timeout periods: the tickle (or at
        // worst one backstop timeout) wakes the sleeper.
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn stale_ticket_does_not_sleep() {
        let sleep = Sleep::new();
        let ticket = sleep.start_looking();
        // Producer runs before we commit to sleeping:
        sleep.tickle();
        let start = Instant::now();
        sleep.sleep(ticket); // counter changed -> returns immediately
        assert!(start.elapsed() < SLEEP_TIMEOUT);
    }

    #[test]
    fn cancel_decrements_sleepers() {
        let sleep = Sleep::new();
        let _ticket = sleep.start_looking();
        sleep.cancel();
        assert_eq!(sleep.sleepers.load(Ordering::SeqCst), 0);
    }
}
