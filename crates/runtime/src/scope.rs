//! Structured fork-join scopes: spawn arbitrarily many tasks that may
//! borrow from the enclosing stack frame; the scope blocks (helping with
//! work) until all of them complete.

use crate::job::{HeapJob, JobRef};
use crate::registry::{global_pool, WorkerThread};
use parking_lot::Mutex;
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A scope in which tasks borrowing data with lifetime `'scope` can be
/// spawned. Created by [`scope`].
pub struct Scope<'scope> {
    /// Tasks spawned but not yet completed.
    pending: AtomicUsize,
    /// First captured panic from any spawned task.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant over 'scope (we hand out &Scope<'scope> to tasks).
    marker: PhantomData<std::cell::Cell<&'scope mut ()>>,
}

/// Create a scope: `body` may call [`Scope::spawn`] with closures that
/// borrow locals of the caller. Returns `body`'s result once **all**
/// spawned tasks (including transitively spawned ones) have finished.
///
/// Panics from the body or any task are propagated (first one wins)
/// after every task has completed, so borrowed data is never observed
/// by still-running tasks past this call.
///
/// ```
/// let mut parts = [0u64; 4];
/// petamg_runtime::scope(|s| {
///     for (i, p) in parts.iter_mut().enumerate() {
///         s.spawn(move |_| *p = (i as u64 + 1) * 10);
///     }
/// });
/// assert_eq!(parts, [10, 20, 30, 40]);
/// ```
pub fn scope<'scope, F, R>(body: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    match WorkerThread::current() {
        Some(worker) => scope_core(worker, body),
        None => global_pool().install(|| scope(body)),
    }
}

fn scope_core<'scope, F, R>(worker: &WorkerThread, body: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        marker: PhantomData,
    };

    let body_result = panic::catch_unwind(AssertUnwindSafe(|| body(&scope)));

    // Help until all spawned tasks have completed. Acquire so task writes
    // (through their borrows) are visible after the loop.
    while scope.pending.load(Ordering::Acquire) != 0 {
        match worker.find_work() {
            Some(job) => unsafe { job.execute() },
            None => {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }

    if let Some(payload) = scope.panic.lock().take() {
        panic::resume_unwind(payload);
    }
    match body_result {
        Ok(r) => r,
        Err(payload) => panic::resume_unwind(payload),
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may borrow data of lifetime `'scope`. The task
    /// receives the scope again so it can spawn recursively.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::Relaxed);

        // Erase the scope reference to a raw pointer so the heap job can
        // be 'static. Sound because scope_core does not return until
        // `pending` drains back to zero, keeping `self` alive.
        let scope_ptr = SendPtr((self as *const Scope<'scope>).cast::<Scope<'static>>());
        let task = move || {
            let scope_ptr = scope_ptr;
            // SAFETY: see above — the Scope outlives every spawned task.
            let scope: &Scope<'static> = unsafe { &*scope_ptr.0 };
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                // Shrink 'static back to the caller-visible lifetime.
                let scope: &Scope<'_> = scope;
                f(unsafe { std::mem::transmute::<&Scope<'_>, &Scope<'scope>>(scope) });
            }));
            if let Err(payload) = result {
                let mut slot = scope.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            // Release so the waiter's Acquire load sees our writes.
            scope.pending.fetch_sub(1, Ordering::Release);
        };

        // Erase the closure's 'scope lifetime. Sound for the same reason.
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        let job: JobRef = HeapJob::into_job_ref(task);

        match WorkerThread::current() {
            Some(worker) => worker.push(job),
            None => global_pool_inject(job),
        }
    }

    /// Number of spawned-but-unfinished tasks (diagnostic; racy).
    pub fn pending_tasks(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }
}

fn global_pool_inject(job: JobRef) {
    // Routing a spawn from a foreign thread: hand it to the global pool.
    crate::registry::global_inject(job);
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*const T);
// SAFETY: the pointee is Sync (Scope's shared state is a Mutex + atomics)
// and kept alive by the scope protocol.
unsafe impl<T> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_borrows_stack_data() {
        let pool = ThreadPool::new(2);
        let mut values = [0u32; 16];
        pool.install(|| {
            scope(|s| {
                for (i, v) in values.iter_mut().enumerate() {
                    s.spawn(move |_| *v = i as u32 * 2);
                }
            });
        });
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
    }

    #[test]
    fn scope_recursive_spawn() {
        let pool = ThreadPool::new(2);
        static COUNT: AtomicU64 = AtomicU64::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|s| {
                        COUNT.fetch_add(1, Ordering::SeqCst);
                        for _ in 0..4 {
                            s.spawn(|_| {
                                COUNT.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                }
            });
        });
        assert_eq!(COUNT.load(Ordering::SeqCst), 4 + 16);
    }

    #[test]
    fn scope_propagates_task_panic_after_completion() {
        let pool = ThreadPool::new(2);
        let done = AtomicU64::new(0);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                scope(|s| {
                    s.spawn(|_| panic!("task panic"));
                    s.spawn(|_| {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                });
            })
        }));
        assert!(res.is_err());
        assert_eq!(
            done.load(Ordering::SeqCst),
            1,
            "sibling task must still run"
        );
    }

    #[test]
    fn scope_from_external_thread() {
        let total = AtomicU64::new(0);
        scope(|s| {
            for i in 1..=10 {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(i, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 55);
    }
}
