//! # petamg-runtime
//!
//! A Cilk-style work-stealing task runtime, reproducing the PetaBricks
//! runtime substrate described in §3.2.3 of *Autotuning Multigrid with
//! PetaBricks* (SC'09):
//!
//! > "The runtime scheduler dynamically schedules tasks (that have their
//! > input dependencies satisfied) across processors to distribute work.
//! > The scheduler attempts to maximize locality using a greedy algorithm
//! > that schedules tasks in a depth-first search order. Following the
//! > approach taken by Cilk, we distribute work with thread-private deques
//! > and a task stealing protocol."
//!
//! The design mirrors that description directly:
//!
//! * every worker owns a **LIFO deque** (depth-first local execution,
//!   FIFO stealing from the cold end — the classic Cilk discipline),
//! * idle workers **steal** from a global injector and from random victims,
//! * blocked parents **help** by executing pending work while they wait
//!   (continuation stealing is approximated by child stealing + helping,
//!   as in rayon),
//! * sleeping workers park on a condition variable with an event-counter
//!   protocol so that work injection can never be missed for longer than
//!   a bounded timeout.
//!
//! The public surface is intentionally small: [`ThreadPool`], [`join`],
//! [`scope`], and [`parallel_for`]. The multigrid kernels in `petamg-grid`
//! drive all of their parallel sweeps through this crate (with rayon kept
//! next to it purely as an ablation baseline).
//!
//! ```
//! let pool = petamg_runtime::ThreadPool::new(2);
//! let (a, b) = pool.install(|| petamg_runtime::join(|| 1 + 1, || 2 + 2));
//! assert_eq!((a, b), (2, 4));
//!
//! let mut data = vec![0u64; 1024];
//! pool.parallel_for_slice(&mut data, 64, |off, chunk| {
//!     for (i, x) in chunk.iter_mut().enumerate() {
//!         *x = (off + i) as u64;
//!     }
//! });
//! assert_eq!(data[513], 513);
//! ```

mod job;
mod latch;
mod par;
mod registry;
mod scope;
mod sleep;

pub use par::{
    parallel_for, parallel_for_reduce_max, parallel_for_reduce_sum, parallel_reduce, ParallelForExt,
};
pub use registry::{current_worker_index, PoolStats, ThreadPool};
pub use scope::{scope, Scope};

use job::StackJob;
use latch::{Latch, SpinLatch};
use registry::WorkerThread;

/// Execute `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. Panics in either closure are propagated after both complete.
///
/// When called on a worker thread, `oper_b` is pushed onto the local deque
/// (where idle workers may steal it) while `oper_a` runs immediately —
/// exactly the Cilk `spawn`/`sync` pattern. When called from a thread
/// outside any pool, the call is routed through the global pool.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match WorkerThread::current() {
        Some(worker) => join_core(worker, oper_a, oper_b),
        None => registry::global().install(|| join(oper_a, oper_b)),
    }
}

fn join_core<A, B, RA, RB>(worker: &WorkerThread, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::<SpinLatch, B, RB>::new(oper_b, SpinLatch::new());
    // SAFETY: `job_b` lives on this stack frame and we do not return until
    // its latch is set, so the erased pointer inside the JobRef cannot
    // dangle while it is reachable by thieves.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    worker.push(job_b_ref);

    // Run the first half inline. If it panics we still must wait for the
    // second half (a thief may be executing it on our stack data).
    let status_a = std::panic::catch_unwind(std::panic::AssertUnwindSafe(oper_a));

    while !job_b.latch().probe() {
        // Depth-first: drain our own deque (this is where `job_b` sits if
        // nobody stole it), otherwise help by stealing someone else's work.
        match worker.find_work() {
            Some(job) => unsafe { job.execute() },
            None => {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }

    let result_b = job_b.into_result(); // propagates a panic from B
    match status_a {
        Ok(result_a) => (result_a, result_b),
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_basic() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.install(|| join(|| 40 + 2, || "ok"));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_from_external_thread_uses_global_pool() {
        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn join_nested_fibonacci() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                let (a, b) = join(|| fib(n - 1), || fib(n - 2));
                a + b
            }
        }
        let pool = ThreadPool::new(4);
        assert_eq!(pool.install(|| fib(20)), 6765);
    }

    #[test]
    fn join_propagates_panic_from_a() {
        let pool = ThreadPool::new(2);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| join(|| panic!("boom-a"), || 7))
        }));
        assert!(res.is_err());
    }

    #[test]
    fn join_propagates_panic_from_b() {
        let pool = ThreadPool::new(2);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| join(|| 7, || panic!("boom-b")))
        }));
        assert!(res.is_err());
    }

    #[test]
    fn single_thread_pool_still_completes() {
        let pool = ThreadPool::new(1);
        let sum: u64 = pool.install(|| {
            let (a, b) = join(
                || (0..1000u64).sum::<u64>(),
                || (1000..2000u64).sum::<u64>(),
            );
            a + b
        });
        assert_eq!(sum, (0..2000u64).sum::<u64>());
    }
}
