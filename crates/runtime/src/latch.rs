//! Latches: one-shot signalling primitives used to publish job completion.
//!
//! The memory-ordering discipline follows the patterns from *Rust Atomics
//! and Locks*: the setter releases, the prober acquires, so everything the
//! job wrote (its result slot in particular) is visible to the waiter.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};

/// A one-shot completion flag.
pub(crate) trait Latch {
    /// Signal completion. Implementations must use release semantics (or
    /// stronger) so the waiter observes all prior writes.
    fn set(&self);
    /// Non-blocking check with acquire semantics.
    fn probe(&self) -> bool;
}

/// Latch for waiters that help with other work while polling: a bare
/// atomic flag, no parking. Used by `join`.
pub(crate) struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }
}

impl Latch for SpinLatch {
    #[inline]
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }

    #[inline]
    fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

/// Latch for external (non-worker) threads that block until completion.
/// Used by `ThreadPool::install`.
pub(crate) struct LockLatch {
    state: Mutex<bool>,
    condvar: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            state: Mutex::new(false),
            condvar: Condvar::new(),
        }
    }

    /// Block the calling thread until `set` is called.
    pub(crate) fn wait(&self) {
        let mut done = self.state.lock();
        while !*done {
            self.condvar.wait(&mut done);
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.state.lock();
        *done = true;
        // Notify while holding the lock: the waiter cannot miss the signal
        // and the `LockLatch` cannot be freed between store and notify
        // because the waiter owns it and is blocked inside `wait`.
        self.condvar.notify_all();
    }

    fn probe(&self) -> bool {
        *self.state.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_latch_set_probe() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
    }

    #[test]
    fn lock_latch_cross_thread() {
        let l = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            l2.set();
        });
        l.wait();
        assert!(l.probe());
        h.join().unwrap();
    }

    #[test]
    fn spin_latch_publishes_writes() {
        // Release/acquire pairing: data written before set() must be
        // visible after probe() returns true.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let data = Arc::new(AtomicUsize::new(0));
        let latch = Arc::new(SpinLatch::new());
        let (d2, l2) = (Arc::clone(&data), Arc::clone(&latch));
        let h = std::thread::spawn(move || {
            d2.store(99, Ordering::Relaxed);
            l2.set();
        });
        while !latch.probe() {
            std::hint::spin_loop();
        }
        assert_eq!(data.load(Ordering::Relaxed), 99);
        h.join().unwrap();
    }
}
