//! Type-erased jobs.
//!
//! A [`JobRef`] is a fat-pointer-free erased reference to a job living
//! either on a blocked caller's stack ([`StackJob`], used by `join` and
//! `install`) or on the heap ([`HeapJob`], used by `scope::spawn`).
//!
//! # Safety model
//!
//! `JobRef` erases lifetimes. The soundness argument is the one rayon
//! uses: whoever creates a `JobRef` from a stack job must not pop that
//! stack frame until the job's latch is set, and a heap job owns its
//! closure and frees it on execution. All `unsafe` in this crate funnels
//! through these two invariants.

use crate::latch::Latch;
use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

/// A trait for types that can be executed through an erased pointer.
pub(crate) trait Job {
    /// Execute the job.
    ///
    /// # Safety
    /// `this` must point to a live instance, and each instance must be
    /// executed at most once.
    unsafe fn execute(this: *const Self);
}

/// An erased, sendable reference to a job.
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever created for jobs whose closures are Send
// (enforced by the public API bounds on join/scope/install), and the
// pointed-to memory is kept alive by the latch protocol described above.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// See the module-level safety model: `data` must outlive the job's
    /// execution and be executed exactly once.
    pub(crate) unsafe fn new<T: Job>(data: *const T) -> JobRef {
        JobRef {
            pointer: data as *const (),
            execute_fn: |ptr| unsafe { T::execute(ptr as *const T) },
        }
    }

    /// # Safety
    /// Must be called at most once per underlying job instance.
    pub(crate) unsafe fn execute(self) {
        unsafe { (self.execute_fn)(self.pointer) }
    }
}

/// Outcome slot of a [`StackJob`].
pub(crate) enum JobResult<R> {
    /// Not yet executed.
    None,
    Ok(R),
    Panic(Box<dyn Any + Send>),
}

/// A job allocated on the stack of a blocked caller.
///
/// The caller keeps the instance alive and waits on `latch` before
/// reading `result`.
pub(crate) struct StackJob<L: Latch, F, R>
where
    F: FnOnce() -> R,
{
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

// SAFETY: access to `func`/`result` is serialized by the latch protocol:
// the executing thread writes them before `latch.set()` (release) and the
// owner reads them only after `probe()` (acquire) returns true.
unsafe impl<L: Latch + Sync, F: FnOnce() -> R + Send, R: Send> Sync for StackJob<L, F, R> {}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, latch: L) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// # Safety
    /// The returned `JobRef` must not outlive `self`, and `self` must not
    /// be dropped until the latch is set.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef
    where
        L: Sync,
    {
        unsafe { JobRef::new(self as *const Self) }
    }

    /// Take the result. Must only be called after the latch is set.
    /// Propagates the job's panic, if any.
    pub(crate) fn into_result(self) -> R {
        match self.result.into_inner() {
            JobResult::None => unreachable!("job result taken before execution"),
            JobResult::Ok(r) => r,
            JobResult::Panic(payload) => panic::resume_unwind(payload),
        }
    }
}

impl<L: Latch, F, R> Job for StackJob<L, F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute(this: *const Self) {
        let this = unsafe { &*this };
        // SAFETY: execute-at-most-once means we are the only accessor of
        // `func` and `result` until the latch is set.
        let func = unsafe { (*this.func.get()).take() }.expect("StackJob executed twice");
        let outcome = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(payload) => JobResult::Panic(payload),
        };
        unsafe {
            *this.result.get() = outcome;
        }
        // The latch store is the last touch of `this`: the instant it is
        // visible, the owning stack frame may be popped.
        this.latch.set();
    }
}

/// A heap-allocated fire-and-forget job, used by `Scope::spawn`.
/// Completion accounting (and panic capture) is the closure's own
/// responsibility; executing the job frees the allocation.
pub(crate) struct HeapJob<F>
where
    F: FnOnce() + Send,
{
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    /// Allocates the job and returns an owning `JobRef`.
    pub(crate) fn into_job_ref(func: F) -> JobRef {
        let boxed = Box::new(HeapJob { func });
        // SAFETY: the Box is leaked here and reconstituted exactly once in
        // `execute`, which is called at most once per JobRef.
        unsafe { JobRef::new(Box::into_raw(boxed)) }
    }
}

impl<F> Job for HeapJob<F>
where
    F: FnOnce() + Send,
{
    unsafe fn execute(this: *const Self) {
        let boxed = unsafe { Box::from_raw(this as *mut Self) };
        (boxed.func)();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latch::SpinLatch;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn stack_job_roundtrip() {
        let job = StackJob::<SpinLatch, _, _>::new(|| 6 * 7, SpinLatch::new());
        let job_ref = unsafe { job.as_job_ref() };
        unsafe { job_ref.execute() };
        assert!(job.latch().probe());
        assert_eq!(job.into_result(), 42);
    }

    #[test]
    fn stack_job_captures_panic() {
        let job: StackJob<SpinLatch, _, ()> = StackJob::new(|| panic!("inner"), SpinLatch::new());
        let job_ref = unsafe { job.as_job_ref() };
        unsafe { job_ref.execute() };
        assert!(job.latch().probe());
        let res = panic::catch_unwind(AssertUnwindSafe(move || job.into_result()));
        assert!(res.is_err());
    }

    #[test]
    fn heap_job_runs_and_frees() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let job_ref = HeapJob::into_job_ref(|| {
            COUNT.fetch_add(1, Ordering::SeqCst);
        });
        unsafe { job_ref.execute() };
        assert_eq!(COUNT.load(Ordering::SeqCst), 1);
    }
}
