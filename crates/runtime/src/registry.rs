//! The thread pool: worker registry, deques, stealing, and lifecycle.

use crate::job::{JobRef, StackJob};
use crate::latch::LockLatch;
use crate::sleep::Sleep;
use crossbeam_deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Counters exposed for benchmarking and diagnostics. All counters are
/// monotonically increasing over the pool's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed by workers (both local pops and steals).
    pub jobs_executed: u64,
    /// Jobs obtained by stealing from another worker or the injector.
    pub jobs_stolen: u64,
}

#[derive(Default)]
struct Stats {
    executed: AtomicU64,
    stolen: AtomicU64,
}

pub(crate) struct Registry {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    sleep: Sleep,
    terminate: AtomicBool,
    num_threads: usize,
    stats: Stats,
}

impl Registry {
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.push(job);
        self.sleep.tickle();
    }

    fn steal_from_injector(&self) -> Option<JobRef> {
        loop {
            match self.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }
}

thread_local! {
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

/// Per-worker state. Lives on the worker thread's stack for the lifetime
/// of the pool; other threads only interact with it through its
/// [`Stealer`] (owned by the registry).
pub(crate) struct WorkerThread {
    deque: Worker<JobRef>,
    index: usize,
    registry: Arc<Registry>,
    /// xorshift state used to randomize steal victims.
    rng: Cell<u64>,
}

impl WorkerThread {
    /// Returns the worker state of the current thread, if it is a pool
    /// worker.
    pub(crate) fn current() -> Option<&'static WorkerThread> {
        let ptr = WORKER.with(|w| w.get());
        if ptr.is_null() {
            None
        } else {
            // SAFETY: the pointer is installed by `worker_main` on this
            // very thread and cleared before the stack frame dies; the
            // 'static is a lie contained to this module (the reference is
            // only used within the dynamic extent of worker_main).
            Some(unsafe { &*ptr })
        }
    }

    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    pub(crate) fn index(&self) -> usize {
        self.index
    }

    /// Push a job onto the local deque (hot path of `join`).
    pub(crate) fn push(&self, job: JobRef) {
        self.deque.push(job);
        self.registry.sleep.tickle();
    }

    fn next_random(&self) -> u64 {
        // xorshift64*: cheap, good enough to decorrelate steal victims.
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Pop local work or steal. Depth-first: local LIFO pop first, then
    /// the injector, then random-victim stealing (FIFO end).
    pub(crate) fn find_work(&self) -> Option<JobRef> {
        if let Some(job) = self.deque.pop() {
            self.registry.stats.executed.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        self.steal_work()
    }

    fn steal_work(&self) -> Option<JobRef> {
        let registry = &*self.registry;
        if let Some(job) = registry.steal_from_injector() {
            registry.stats.executed.fetch_add(1, Ordering::Relaxed);
            registry.stats.stolen.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        let n = registry.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = (self.next_random() as usize) % n;
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == self.index {
                continue;
            }
            loop {
                match registry.stealers[victim].steal() {
                    Steal::Success(job) => {
                        registry.stats.executed.fetch_add(1, Ordering::Relaxed);
                        registry.stats.stolen.fetch_add(1, Ordering::Relaxed);
                        return Some(job);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }
}

fn worker_main(deque: Worker<JobRef>, index: usize, registry: Arc<Registry>) {
    let worker = WorkerThread {
        deque,
        index,
        registry,
        rng: Cell::new(0x9E37_79B9_7F4A_7C15 ^ ((index as u64 + 1) << 32 | 0xDEAD)),
    };
    WORKER.with(|w| w.set(&worker as *const WorkerThread));

    loop {
        if let Some(job) = worker.find_work() {
            // Jobs catch their own panics (StackJob) or are documented as
            // fire-and-forget wrappers that catch internally (scope), so
            // executing here cannot unwind through the worker loop in
            // normal operation.
            unsafe { job.execute() };
            continue;
        }
        if worker.registry.terminate.load(Ordering::SeqCst) {
            break;
        }
        // Sleep protocol (see sleep.rs): register, re-check, park.
        let ticket = worker.registry.sleep.start_looking();
        if let Some(job) = worker.find_work() {
            worker.registry.sleep.cancel();
            unsafe { job.execute() };
            continue;
        }
        if worker.registry.terminate.load(Ordering::SeqCst) {
            worker.registry.sleep.cancel();
            break;
        }
        worker.registry.sleep.sleep(ticket);
    }

    WORKER.with(|w| w.set(std::ptr::null()));
}

/// A work-stealing thread pool in the style of the PetaBricks runtime
/// (§3.2.3): thread-private LIFO deques, random-victim stealing, and
/// depth-first local execution.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ThreadPool {
    /// Create a pool with `num_threads` workers (at least 1).
    ///
    /// # Panics
    /// Panics if `num_threads == 0` or if OS thread spawning fails.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads >= 1, "thread pool needs at least one worker");
        let deques: Vec<Worker<JobRef>> = (0..num_threads).map(|_| Worker::new_lifo()).collect();
        let stealers = deques.iter().map(Worker::stealer).collect();
        let registry = Arc::new(Registry {
            injector: Injector::new(),
            stealers,
            sleep: Sleep::new(),
            terminate: AtomicBool::new(false),
            num_threads,
            stats: Stats::default(),
        });
        let mut handles = Vec::with_capacity(num_threads);
        for (index, deque) in deques.into_iter().enumerate() {
            let registry = Arc::clone(&registry);
            let handle = std::thread::Builder::new()
                .name(format!("petamg-worker-{index}"))
                .spawn(move || worker_main(deque, index, registry))
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        ThreadPool {
            registry,
            handles: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.registry.num_threads
    }

    /// Scheduler counters (approximate; relaxed atomics).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs_executed: self.registry.stats.executed.load(Ordering::Relaxed),
            jobs_stolen: self.registry.stats.stolen.load(Ordering::Relaxed),
        }
    }

    /// Run `op` inside the pool, blocking the calling thread until it
    /// completes. Nested `install` from a worker of this same pool runs
    /// inline (no deadlock).
    pub fn install<F, R>(&self, op: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(worker) = WorkerThread::current() {
            if Arc::ptr_eq(worker.registry(), &self.registry) {
                return op();
            }
        }
        let job = StackJob::<LockLatch, F, R>::new(op, LockLatch::new());
        // SAFETY: we block on the latch below, so the stack frame holding
        // `job` outlives its execution.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.inject(job_ref);
        job.latch().wait();
        job.into_result()
    }

    /// Inject a detached fire-and-forget job into this pool and return
    /// immediately. The job runs on whichever worker dequeues it (local
    /// pop or steal) — this is the submission path of the plan-serving
    /// engine in `petamg-serve`, which bounds admission itself before
    /// spawning.
    ///
    /// The closure must not unwind: a panic escaping a detached job
    /// kills the worker thread that happened to execute it (the pool
    /// keeps running with one fewer worker). Callers that cannot prove
    /// their closure panic-free should wrap it in
    /// `std::panic::catch_unwind`, as the serving engine does.
    pub fn spawn<F>(&self, op: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.registry.inject(crate::job::HeapJob::into_job_ref(op));
    }

    /// `join` restricted to this pool (convenience: `install` + `join`).
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.install(|| crate::join(oper_a, oper_b))
    }

    /// Parallel loop over `0..len` in grain-sized blocks; see
    /// [`crate::parallel_for`].
    pub fn parallel_for<F>(&self, len: usize, grain: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.install(|| crate::parallel_for(len, grain, &body));
    }

    /// Parallel loop over disjoint mutable chunks of a slice. The body
    /// receives `(offset_of_chunk, chunk)`.
    pub fn parallel_for_slice<T, F>(&self, data: &mut [T], grain: usize, body: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.install(|| crate::par::parallel_for_slice_core(data, 0, grain.max(1), &body));
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate.store(true, Ordering::SeqCst);
        // Wake everyone repeatedly until all workers observed termination
        // and exited. The backstop timeout in `sleep` guarantees progress
        // even if a tickle races a worker going to sleep.
        let mut handles = std::mem::take(&mut *self.handles.lock());
        for h in handles.drain(..) {
            self.registry.sleep.tickle();
            let _ = h.join();
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-global pool, sized by `PETAMG_NUM_THREADS` or the machine's
/// available parallelism.
pub(crate) fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let threads = petamg_obs::env::num_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        ThreadPool::new(threads)
    })
}

/// Handle to the global pool for callers that want to reuse it explicitly.
pub fn global_pool() -> &'static ThreadPool {
    global()
}

/// Inject a job into the global pool (used by `Scope::spawn` from threads
/// that are not pool workers).
pub(crate) fn global_inject(job: JobRef) {
    global().registry.inject(job);
}

/// Index of the current worker thread within its pool, if any. Useful for
/// per-thread scratch buffers in kernels.
pub fn current_worker_index() -> Option<usize> {
    WorkerThread::current().map(|w| w.index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_spawns_and_drops_cleanly() {
        for _ in 0..4 {
            let pool = ThreadPool::new(3);
            assert_eq!(pool.num_threads(), 3);
            drop(pool);
        }
    }

    #[test]
    fn install_runs_on_worker() {
        let pool = ThreadPool::new(2);
        let on_worker = pool.install(|| WorkerThread::current().is_some());
        assert!(on_worker);
        assert!(WorkerThread::current().is_none());
    }

    #[test]
    fn nested_install_same_pool_is_inline() {
        let pool = ThreadPool::new(2);
        let x = pool.install(|| pool.install(|| pool.install(|| 5)));
        assert_eq!(x, 5);
    }

    #[test]
    fn install_propagates_panic() {
        let pool = ThreadPool::new(2);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("install panic"))
        }));
        assert!(res.is_err());
        // Pool must still be usable afterwards.
        assert_eq!(pool.install(|| 3), 3);
    }

    #[test]
    fn stats_record_execution() {
        let pool = ThreadPool::new(2);
        let before = pool.stats();
        pool.install(|| {
            crate::join(|| (), || ());
        });
        let after = pool.stats();
        assert!(after.jobs_executed > before.jobs_executed);
    }

    #[test]
    fn worker_index_in_range() {
        let pool = ThreadPool::new(4);
        let idx = pool.install(current_worker_index);
        assert!(idx.is_some());
        assert!(idx.unwrap() < 4);
        assert_eq!(current_worker_index(), None);
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while counter.load(Ordering::SeqCst) < 64 {
            assert!(
                std::time::Instant::now() < deadline,
                "spawned jobs must all run"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn heavy_concurrent_installs() {
        let pool = std::sync::Arc::new(ThreadPool::new(2));
        static SUM: AtomicUsize = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8 {
                let pool = std::sync::Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..50 {
                        pool.install(|| {
                            SUM.fetch_add(t * i % 7 + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert!(SUM.load(Ordering::Relaxed) > 0);
    }
}
