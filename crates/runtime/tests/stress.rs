//! Stress and failure-injection tests for the work-stealing runtime.

use petamg_runtime::{join, parallel_for, parallel_reduce, scope, ThreadPool};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn pool_survives_repeated_panics() {
    let pool = ThreadPool::new(2);
    for round in 0..20 {
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                if round % 2 == 0 {
                    join(|| panic!("a{round}"), || 1)
                } else {
                    join(|| 1, || panic!("b{round}"))
                }
            })
        }));
        assert!(res.is_err());
        // Pool still functional after each panic.
        assert_eq!(pool.install(|| 7 * round), 7 * round);
    }
}

#[test]
fn deep_nesting_does_not_deadlock() {
    let pool = ThreadPool::new(2);
    fn nest(depth: usize) -> usize {
        if depth == 0 {
            return 1;
        }
        let (a, b) = join(|| nest(depth - 1), || nest(depth - 1));
        // Also interleave a scope at every other level.
        if depth.is_multiple_of(2) {
            let count = AtomicUsize::new(0);
            scope(|s| {
                for _ in 0..2 {
                    s.spawn(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 2);
        }
        a + b
    }
    let total = pool.install(|| nest(10));
    assert_eq!(total, 1 << 10);
}

#[test]
fn parallel_for_panic_propagates_and_pool_survives() {
    let pool = ThreadPool::new(2);
    let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            parallel_for(1000, 8, &|i| {
                if i == 613 {
                    panic!("injected failure at {i}");
                }
            })
        })
    }));
    assert!(res.is_err());
    // Other indices may or may not have run; the pool must still work.
    let hits = AtomicUsize::new(0);
    pool.install(|| {
        parallel_for(100, 4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
    });
    assert_eq!(hits.load(Ordering::Relaxed), 100);
}

#[test]
fn many_pools_coexist() {
    let pools: Vec<_> = (1..=4).map(ThreadPool::new).collect();
    std::thread::scope(|s| {
        for (i, pool) in pools.iter().enumerate() {
            s.spawn(move || {
                let sum = pool.install(|| {
                    parallel_reduce(10_000, 64, 0u64, &|acc, j| acc + j as u64, &|a, b| a + b)
                });
                assert_eq!(sum, (0..10_000u64).sum::<u64>(), "pool {i}");
            });
        }
    });
}

#[test]
fn work_actually_distributes_across_threads() {
    let pool = Arc::new(ThreadPool::new(4));
    let seen: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
    pool.install(|| {
        parallel_for(4_000, 1, &|_| {
            if let Some(idx) = petamg_runtime::current_worker_index() {
                seen[idx].fetch_add(1, Ordering::Relaxed);
                // A little work so stealing has time to happen.
                std::hint::black_box((0..100).sum::<usize>());
            }
        })
    });
    let active = seen
        .iter()
        .filter(|c| c.load(Ordering::Relaxed) > 0)
        .count();
    assert!(
        active >= 2,
        "expected at least 2 workers to participate, got {active}"
    );
    let total: usize = seen.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(total, 4_000);
}

#[test]
fn stats_steals_are_plausible() {
    let pool = ThreadPool::new(4);
    pool.install(|| {
        parallel_for(10_000, 4, &|_| {
            std::hint::black_box((0..50).sum::<usize>());
        })
    });
    let stats = pool.stats();
    assert!(stats.jobs_executed > 0);
    assert!(stats.jobs_stolen <= stats.jobs_executed);
}

#[test]
fn scope_with_heavy_fanout() {
    let pool = ThreadPool::new(3);
    let count = AtomicUsize::new(0);
    pool.install(|| {
        scope(|s| {
            for _ in 0..2_000 {
                s.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    assert_eq!(count.load(Ordering::Relaxed), 2_000);
}

#[test]
fn reduce_stays_deterministic_under_contention() {
    let pool = ThreadPool::new(4);
    let run = || {
        pool.install(|| {
            parallel_reduce(
                100_000,
                128,
                0.0f64,
                &|acc, i| acc + (i as f64).sqrt(),
                &|a, b| a + b,
            )
        })
    };
    let first = run();
    for _ in 0..5 {
        assert_eq!(first.to_bits(), run().to_bits());
    }
}
