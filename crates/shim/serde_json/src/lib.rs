//! API-compatible shim for the subset of `serde_json` this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`], and the
//! [`Value`]/[`Number`] types (re-exported from the `serde` shim's
//! value model).

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

use serde::{Deserialize, Serialize};

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (two-space indent, like `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value)
}

// ---- writer ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.render()),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid keyword at offset {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(i) = token.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
            if let Ok(u) = token.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
        }
        token
            .parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::custom(format!("invalid number `{token}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
    }

    #[test]
    fn object_roundtrip() {
        let text = r#"{"alpha": 1, "beta": [true, null, "x"], "gamma": {"d": 2.5}}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
        let pretty = to_string_pretty(&v).unwrap();
        let v3: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v3);
    }

    #[test]
    fn pretty_format_shape() {
        let v: Value = from_str(r#"{"a":1}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn float_precision_roundtrip() {
        for x in [1.15, std::f64::consts::PI, 4294967296.0, 1e-300] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "via {s}");
        }
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<f64>("\"not a number\"").is_err());
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(from_str::<f64>("-2.5E-2").unwrap(), -0.025);
    }
}
