//! API-compatible shim for the subset of `parking_lot` this workspace
//! uses: `Mutex` (non-poisoning `lock()` returning a guard directly) and
//! `Condvar` (`wait(&mut guard)` / `wait_for(&mut guard, timeout)`).
//!
//! Implemented over `std::sync`; a poisoned std mutex (a thread panicked
//! while holding it) is transparently recovered, matching parking_lot's
//! no-poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. Wraps the std guard in an `Option`
/// so [`Condvar`] can temporarily take ownership during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock (recovers from std poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed wait; mirrors `parking_lot::WaitTimeoutResult`.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with `parking_lot`'s `&mut guard` wait signature.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakeup() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
