//! API-compatible shim for the subset of `crossbeam-deque` the runtime
//! uses: a LIFO [`Worker`] deque with FIFO [`Stealer`]s and a FIFO
//! [`Injector`].
//!
//! Implemented with `Mutex<VecDeque>` — lock-based rather than the real
//! crate's lock-free Chase-Lev deque. The scheduling *policy* (LIFO
//! local pops, FIFO steals) is identical, so the work-stealing pool
//! behaves the same; only per-operation cost differs, which is invisible
//! to the row-granular kernels this workspace schedules.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Result of a steal attempt.
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and may be retried. (Never produced by
    /// this lock-based shim; kept for API compatibility.)
    Retry,
}

#[derive(Debug)]
struct Queue<T>(Mutex<VecDeque<T>>);

impl<T> Queue<T> {
    fn new() -> Self {
        Queue(Mutex::new(VecDeque::new()))
    }

    fn with<R>(&self, f: impl FnOnce(&mut VecDeque<T>) -> R) -> R {
        f(&mut self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Owner side of a worker deque: LIFO push/pop from the hot end.
pub struct Worker<T> {
    queue: Arc<Queue<T>>,
}

impl<T> Worker<T> {
    /// A new LIFO worker deque.
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Queue::new()),
        }
    }

    /// A stealer handle taking from the cold (FIFO) end.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Push onto the hot end.
    pub fn push(&self, task: T) {
        self.queue.with(|q| q.push_back(task));
    }

    /// Pop from the hot end (depth-first order).
    pub fn pop(&self) -> Option<T> {
        self.queue.with(|q| q.pop_back())
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queue.with(|q| q.is_empty())
    }
}

/// Thief side of a worker deque: steals from the cold end.
pub struct Stealer<T> {
    queue: Arc<Queue<T>>,
}

impl<T> Stealer<T> {
    /// Attempt to steal one task.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.with(|q| q.pop_front()) {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// Global FIFO injector queue shared by all workers.
pub struct Injector<T> {
    queue: Queue<T>,
}

impl<T> Injector<T> {
    /// A new empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Queue::new(),
        }
    }

    /// Push onto the tail.
    pub fn push(&self, task: T) {
        self.queue.with(|q| q.push_back(task));
    }

    /// Attempt to take from the head.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.with(|q| q.pop_front()) {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the injector is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queue.with(|q| q.is_empty())
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops hot end");
        match s.steal() {
            Steal::Success(v) => assert_eq!(v, 1, "thief takes cold end"),
            _ => panic!("steal failed"),
        }
        assert_eq!(w.pop(), Some(2));
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push('a');
        inj.push('b');
        assert!(matches!(inj.steal(), Steal::Success('a')));
        assert!(matches!(inj.steal(), Steal::Success('b')));
        assert!(matches!(inj.steal(), Steal::Empty));
    }

    #[test]
    fn cross_thread_stealing() {
        let w = Worker::new_lifo();
        for i in 0..100 {
            w.push(i);
        }
        let stolen: usize = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    sc.spawn(move || {
                        let mut count = 0;
                        while let Steal::Success(_) = s.steal() {
                            count += 1;
                        }
                        count
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(stolen, 100);
    }
}
