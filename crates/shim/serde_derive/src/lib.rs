//! Derive macros for the `serde` shim, written against the bare
//! `proc_macro` API (no `syn`/`quote` — the build environment has no
//! registry access).
//!
//! Supported input shapes — exactly what this workspace derives on:
//!
//! * structs with named fields,
//! * enums whose variants are unit, named-field, or single-element
//!   tuple,
//! * the `#[serde(untagged)]` container attribute on enums.
//!
//! Generated representations match serde's defaults: structs serialize
//! as objects, unit variants as strings, struct/tuple variants as
//! single-key objects, untagged variants as their bare payload (unit
//! variants as `null`). Anything unsupported fails the build with a
//! clear message rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Variant {
    name: String,
    /// Named fields, or `None` for a tuple variant (with arity), or
    /// neither for a unit variant.
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        untagged: bool,
        variants: Vec<Variant>,
    },
}

/// Skip attributes (`#[...]` / `#![...]`), reporting whether any was
/// `#[serde(untagged)]`.
fn skip_attributes(tokens: &[TokenTree], mut pos: usize) -> (usize, bool) {
    let mut untagged = false;
    while pos < tokens.len() {
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                pos += 1;
                // Optional `!` of inner attributes.
                if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
                    if p.as_char() == '!' {
                        pos += 1;
                    }
                }
                if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                    if g.delimiter() == Delimiter::Bracket {
                        untagged |= attr_is_serde_untagged(&g.stream());
                        pos += 1;
                        continue;
                    }
                }
                panic!("serde shim derive: malformed attribute");
            }
            _ => break,
        }
    }
    (pos, untagged)
}

fn attr_is_serde_untagged(stream: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "untagged"))
        }
        _ => false,
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(i)) = tokens.get(pos) {
        if i.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

/// Split a token slice on top-level commas, tracking `<...>` depth so
/// generic arguments don't split (JSON types here never nest brackets
/// with commas otherwise).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse `name: Type` chunks into field names, skipping attributes and
/// visibility.
fn parse_named_fields(body: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    split_top_level_commas(&tokens)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let (pos, _) = skip_attributes(&chunk, 0);
            let pos = skip_visibility(&chunk, pos);
            match chunk.get(pos) {
                Some(TokenTree::Ident(name)) => name.to_string(),
                other => panic!("serde shim derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    split_top_level_commas(&tokens)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let (pos, _) = skip_attributes(&chunk, 0);
            let name = match chunk.get(pos) {
                Some(TokenTree::Ident(name)) => name.to_string(),
                other => panic!("serde shim derive: expected variant name, got {other:?}"),
            };
            let fields = match chunk.get(pos + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(&g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    let arity = split_top_level_commas(&inner)
                        .into_iter()
                        .filter(|c| !c.is_empty())
                        .count();
                    VariantFields::Tuple(arity)
                }
                None => VariantFields::Unit,
                other => panic!("serde shim derive: unsupported variant shape {other:?}"),
            };
            Variant { name, fields }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (pos, untagged) = skip_attributes(&tokens, 0);
    let pos = skip_visibility(&tokens, pos);
    let kind = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match &tokens[pos + 1] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if matches!(tokens.get(pos + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (derive on `{name}`)");
    }
    let body = match &tokens[pos + 2] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde shim derive: expected braced body, got {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            untagged,
            variants: parse_variants(&body),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn tuple_binders(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("f{i}")).collect()
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in &fields {
                inserts.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::value::Value {{\n\
                     let mut m = ::serde::value::Map::new();\n\
                     {inserts}\
                     ::serde::value::Value::Object(m)\n\
                   }}\n\
                 }}\n"
            )
        }
        Item::Enum {
            name,
            untagged,
            variants,
        } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let body = if untagged {
                            "::serde::value::Value::Null".to_string()
                        } else {
                            format!("::serde::value::Value::String(\"{vn}\".to_string())")
                        };
                        arms.push_str(&format!("{name}::{vn} => {body},\n"));
                    }
                    VariantFields::Named(fields) => {
                        let binders = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "inner.insert(\"{f}\".to_string(), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        let payload = format!(
                            "{{ let mut inner = ::serde::value::Map::new();\n\
                               {inserts}\
                               ::serde::value::Value::Object(inner) }}"
                        );
                        let body = if untagged {
                            payload
                        } else {
                            format!(
                                "{{ let mut m = ::serde::value::Map::new();\n\
                                   m.insert(\"{vn}\".to_string(), {payload});\n\
                                   ::serde::value::Value::Object(m) }}"
                            )
                        };
                        arms.push_str(&format!("{name}::{vn} {{ {binders} }} => {body},\n"));
                    }
                    VariantFields::Tuple(arity) => {
                        let binders = tuple_binders(*arity);
                        let payload = if *arity == 1 {
                            format!("::serde::Serialize::to_value({})", binders[0])
                        } else {
                            let items = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::value::Value::Array(vec![{items}])")
                        };
                        let body = if untagged {
                            payload
                        } else {
                            format!(
                                "{{ let mut m = ::serde::value::Map::new();\n\
                                   m.insert(\"{vn}\".to_string(), {payload});\n\
                                   ::serde::value::Value::Object(m) }}"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {body},\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::value::Value {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}\n"
            )
        }
    };
    out.parse()
        .expect("serde shim derive: generated code must parse")
}

fn named_fields_constructor(type_path: &str, fields: &[String], source: &str) -> String {
    let mut parts = String::new();
    for f in fields {
        parts.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value({source}.get(\"{f}\")\
             .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,\n"
        ));
    }
    format!("{type_path} {{ {parts} }}")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let ctor = named_fields_constructor(&name, &fields, "obj");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::Error> {{\n\
                     let obj = v.as_object().ok_or_else(|| \
                       ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                     Ok({ctor})\n\
                   }}\n\
                 }}\n"
            )
        }
        Item::Enum {
            name,
            untagged,
            variants,
        } => {
            if untagged {
                // Try each variant in declaration order; first success wins.
                let mut attempts = String::new();
                for v in &variants {
                    match &v.fields {
                        VariantFields::Unit => {
                            attempts.push_str(&format!(
                                "if matches!(v, ::serde::value::Value::Null) \
                                 {{ return Ok({name}::{vn}); }}\n",
                                vn = v.name
                            ));
                        }
                        VariantFields::Named(fields) => {
                            let ctor = named_fields_constructor(
                                &format!("{name}::{}", v.name),
                                fields,
                                "obj",
                            );
                            attempts.push_str(&format!(
                                "if let Some(obj) = v.as_object() {{\n\
                                   let attempt = (|| -> Result<Self, ::serde::Error> \
                                     {{ Ok({ctor}) }})();\n\
                                   if let Ok(x) = attempt {{ return Ok(x); }}\n\
                                 }}\n"
                            ));
                        }
                        VariantFields::Tuple(arity) => {
                            assert_eq!(
                                *arity, 1,
                                "serde shim derive: untagged tuple variants must have one field"
                            );
                            attempts.push_str(&format!(
                                "if let Ok(x) = ::serde::Deserialize::from_value(v) \
                                 {{ return Ok({name}::{vn}(x)); }}\n",
                                vn = v.name
                            ));
                        }
                    }
                }
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                       fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::Error> {{\n\
                         {attempts}\
                         Err(::serde::Error::custom(\
                           \"no untagged variant of {name} matched\"))\n\
                       }}\n\
                     }}\n"
                )
            } else {
                let mut unit_arms = String::new();
                let mut keyed_arms = String::new();
                for v in &variants {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                        }
                        VariantFields::Named(fields) => {
                            let ctor =
                                named_fields_constructor(&format!("{name}::{vn}"), fields, "obj");
                            keyed_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                   let obj = inner.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(\
                                       \"expected object payload for {name}::{vn}\"))?;\n\
                                   return Ok({ctor});\n\
                                 }}\n"
                            ));
                        }
                        VariantFields::Tuple(arity) => {
                            if *arity == 1 {
                                keyed_arms.push_str(&format!(
                                    "\"{vn}\" => return Ok({name}::{vn}(\
                                     ::serde::Deserialize::from_value(inner)?)),\n"
                                ));
                            } else {
                                let gets = (0..*arity)
                                    .map(|i| {
                                        format!(
                                            "::serde::Deserialize::from_value(\
                                             items.get({i}).ok_or_else(|| \
                                             ::serde::Error::custom(\"short tuple\"))?)?"
                                        )
                                    })
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                keyed_arms.push_str(&format!(
                                    "\"{vn}\" => {{\n\
                                       let items = inner.as_array().ok_or_else(|| \
                                         ::serde::Error::custom(\
                                           \"expected array payload for {name}::{vn}\"))?;\n\
                                       return Ok({name}::{vn}({gets}));\n\
                                     }}\n"
                                ));
                            }
                        }
                    }
                }
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                       fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                           ::serde::value::Value::String(s) => {{\n\
                             match s.as_str() {{\n\
                               {unit_arms}\
                               other => return Err(::serde::Error::custom(format!(\
                                 \"unknown unit variant `{{other}}` of {name}\"))),\n\
                             }}\n\
                           }}\n\
                           ::serde::value::Value::Object(m) if m.len() == 1 => {{\n\
                             let (tag, inner) = m.iter().next().expect(\"len checked\");\n\
                             match tag.as_str() {{\n\
                               {keyed_arms}\
                               other => return Err(::serde::Error::custom(format!(\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                             }}\n\
                           }}\n\
                           other => Err(::serde::Error::custom(format!(\
                             \"expected variant of {name}, got {{other:?}}\"))),\n\
                         }}\n\
                       }}\n\
                     }}\n"
                )
            }
        }
    };
    out.parse()
        .expect("serde shim derive: generated code must parse")
}
