//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Accepted size arguments for [`vec()`]: a fixed size or a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size() {
        let strat = vec(0u32..10, 7usize);
        let mut rng = TestRng::for_case(1);
        assert_eq!(strat.generate(&mut rng).len(), 7);
    }

    #[test]
    fn ranged_size() {
        let strat = vec(0u32..10, 2usize..=5);
        let mut rng = TestRng::for_case(2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
