//! API-compatible shim for the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, `prop_oneof!`, [`strategy::Just`], boxed strategies,
//! range and tuple strategies, and `prop::collection::vec`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! seed (fully deterministic across runs) and failing inputs are
//! reported but **not shrunk**. Each generated value prints with the
//! failing case index so failures stay diagnosable.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything user code needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run a block of property tests. Mirrors `proptest!`'s surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u32..10, y in -1.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err(e) if e.is_reject() => {}
                        Err(e) => panic!("property failed at case {case}: {e}"),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fail the property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("assertion failed: {}", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("assertion failed: {}: {}",
                        stringify!($cond), format!($($fmt)*))));
        }
    };
}

/// Fail the property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Discard the current case (counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
