//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produce a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub fn one_of<T>(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { choices }
}

/// See [`one_of`].
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategies {
    ($(($($name:ident / $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_in_bounds_and_deterministic() {
        let mut rng = TestRng::for_case(3);
        for _ in 0..200 {
            assert!((5u32..9).contains(&(5u32..9).generate(&mut rng)));
            assert!((-2i64..=2).contains(&(-2i64..=2).generate(&mut rng)));
            let f = (-1.5f64..1.5).generate(&mut rng);
            assert!((-1.5..1.5).contains(&f));
        }
        let a = (0u64..1000).generate(&mut TestRng::for_case(7));
        let b = (0u64..1000).generate(&mut TestRng::for_case(7));
        assert_eq!(a, b);
    }

    #[test]
    fn map_and_boxed_compose() {
        let strat = (1u32..5).prop_map(|x| x * 10).boxed();
        let mut rng = TestRng::for_case(1);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn one_of_hits_every_arm() {
        let strat = one_of(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut rng = TestRng::for_case(5);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_of_strategies_generates_elementwise() {
        let strats = vec![Just(1u8), Just(2u8)];
        let mut rng = TestRng::for_case(0);
        assert_eq!(strats.generate(&mut rng), vec![1, 2]);
    }
}
