//! Test-runner types: configuration, RNG, and case errors.

/// How many cases [`crate::proptest!`] runs per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` discarded the input.
    Reject,
    /// `prop_assert*!` failed with a message.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (from `prop_assume!`).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }

    /// A failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => f.write_str("input rejected by prop_assume!"),
            TestCaseError::Fail(msg) => f.write_str(msg),
        }
    }
}

/// Deterministic per-case generator (SplitMix64 keyed by case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` (stable across runs and platforms).
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}
