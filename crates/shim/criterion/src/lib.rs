//! API-compatible shim for the subset of `criterion` the benches use:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `warm_up_time` / `measurement_time` / `throughput`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], and
//! [`Bencher::iter`].
//!
//! Measurement model: a short warm-up, then `sample_size` samples, each
//! sized so one sample stays within `measurement_time / sample_size`.
//! Median ns/iter (and derived throughput) print per benchmark — enough
//! for quick relative comparisons; no statistics machinery, no HTML
//! reports. `CRITERION_QUICK=1` cuts warm-up and samples for CI smoke
//! runs.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion 0.5 re-exports it
/// too; the benches in this workspace import it from `std` directly).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0")
}

/// Top-level driver handed to the `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Throughput annotation for a group (reported as elements/sec).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name supplies the function part).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total sampling budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let (warm_up, samples, budget) = if quick_mode() {
            (Duration::from_millis(5), 3, Duration::from_millis(30))
        } else {
            (self.warm_up_time, self.sample_size, self.measurement_time)
        };

        let mut bencher = Bencher {
            mode: Mode::Calibrate {
                deadline: Instant::now() + warm_up,
            },
            iters_per_sample: 1,
            median_ns: 0.0,
        };
        f(&mut bencher);
        let per_iter = bencher.median_ns.max(1.0);
        let sample_budget = budget.as_nanos() as f64 / samples as f64;
        let iters = ((sample_budget / per_iter) as u64).clamp(1, 1_000_000);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.mode = Mode::Sample { iters };
            f(&mut bencher);
            sample_ns.push(bencher.median_ns);
        }
        sample_ns.sort_by(f64::total_cmp);
        let median = sample_ns[sample_ns.len() / 2];

        let mut line = format!("{}/{}: {:>12.1} ns/iter", self.name, id.id, median);
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / (median * 1e-9);
            line.push_str(&format!(" ({rate:.3e} {unit}/s)"));
        }
        println!("{line}");
        self
    }

    /// Run one benchmark that receives an input by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

enum Mode {
    /// Warm-up: run until the deadline, recording mean cost per iter.
    Calibrate { deadline: Instant },
    /// Timed sample of a fixed iteration count.
    Sample { iters: u64 },
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    mode: Mode,
    iters_per_sample: u64,
    median_ns: f64,
}

impl Bencher {
    /// Measure `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        match self.mode {
            Mode::Calibrate { deadline } => {
                let mut iters: u64 = 0;
                let start = Instant::now();
                loop {
                    std_black_box(routine());
                    iters += 1;
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                self.iters_per_sample = iters;
                self.median_ns = start.elapsed().as_nanos() as f64 / iters as f64;
            }
            Mode::Sample { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    std_black_box(routine());
                }
                self.median_ns = start.elapsed().as_nanos() as f64 / iters as f64;
            }
        }
    }
}

/// Collect benchmark functions into a runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0, "routine must have run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("relax", 513).id, "relax/513");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }
}
