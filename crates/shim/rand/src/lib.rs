//! API-compatible shim for the subset of `rand` 0.9 this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] sampling methods `random`, `random_range`, `random_bool`.
//!
//! The generator is SplitMix64 — a small, fast, well-mixed 64-bit PRNG.
//! It is **not** cryptographic (neither is the use here: training-data
//! generation and genetic-tuner mutation, both seeded for determinism).

use std::ops::{Range, RangeInclusive};

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via
/// [`RngExt::random`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

/// Ranges samplable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_in(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe raw 64-bit source.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling methods, mirroring the `rand` 0.9 `Rng` surface this
/// workspace imports as `RngExt`.
pub trait RngExt: RngCore + Sized {
    /// A uniform sample over `T`'s whole domain.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn uniform_u64_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling to kill modulo bias.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_in(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
