//! API-compatible shim for the subset of `rayon` this workspace uses:
//! `(lo..hi).into_par_iter().with_min_len(g)` followed by `for_each`,
//! `map(..).sum()`, or `map(..).reduce(id, op)`, plus
//! [`current_num_threads`].
//!
//! Implemented as plain fork-join over `std::thread::scope`: the range
//! splits into contiguous chunks of at least `min_len` indices (at most
//! one chunk per available core), each chunk runs on its own scoped
//! thread, and reductions combine the in-order chunk results on the
//! calling thread. For a fixed `min_len` and thread count the reduction
//! tree — hence every floating-point sum — is deterministic.
//!
//! This keeps `Exec::Rayon` a meaningful *independent* baseline against
//! the in-house work-stealing pool (`petamg-runtime`): it shares no
//! scheduler code with it.

use std::ops::Range;

/// Number of threads parallel calls may use (mirrors
/// `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Run both closures and return both results. `rayon::join` promises
/// only *potential* parallelism; this shim always runs sequentially —
/// spawning an OS thread per join would be pathological for the
/// fine-grained recursive workloads the benches throw at it. Treat
/// "rayon join" bench numbers as a sequential baseline under the shim.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// Conversion into a parallel iterator (mirrors rayon's trait of the
/// same name).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            range: self,
            min_len: 1,
        }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeParIter {
    range: Range<usize>,
    min_len: usize,
}

/// Split `lo..hi` into contiguous chunks of at least `min_len` indices,
/// at most one per core.
fn chunks_of(range: &Range<usize>, min_len: usize) -> Vec<Range<usize>> {
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return Vec::new();
    }
    let min_len = min_len.max(1);
    let max_chunks = current_num_threads().max(1);
    let chunks = (len / min_len).clamp(1, max_chunks);
    let per = len.div_ceil(chunks);
    (0..chunks)
        .map(|c| {
            let lo = range.start + c * per;
            let hi = (lo + per).min(range.end);
            lo..hi
        })
        .filter(|r| r.start < r.end)
        .collect()
}

/// Run one closure per chunk on scoped threads; first chunk runs inline.
/// Results come back in chunk order.
fn run_chunks<R: Send>(
    chunks: Vec<Range<usize>>,
    body: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    if chunks.len() <= 1 {
        return chunks.into_iter().map(body).collect();
    }
    let body = &body;
    std::thread::scope(|s| {
        let mut iter = chunks.into_iter();
        let first = iter.next().expect("checked non-empty");
        let handles: Vec<_> = iter.map(|c| s.spawn(move || body(c))).collect();
        let mut out = vec![body(first)];
        out.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("chunk panicked")),
        );
        out
    })
}

impl RangeParIter {
    /// Lower bound on indices per split (mirrors rayon's `with_min_len`).
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Run `f` for every index.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let chunks = chunks_of(&self.range, self.min_len);
        run_chunks(chunks, |c| c.for_each(&f));
    }

    /// Map each index through `f`, yielding a reducible iterator.
    pub fn map<F, R>(self, f: F) -> MapParIter<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        MapParIter { base: self, f }
    }
}

/// Result of [`RangeParIter::map`]: supports `sum` and `reduce`.
pub struct MapParIter<F> {
    base: RangeParIter,
    f: F,
}

impl<F> MapParIter<F> {
    /// Sum all mapped values. Chunk partials combine in chunk order, so
    /// the result is deterministic for a fixed `min_len` / thread count.
    pub fn sum<S>(self) -> S
    where
        F: Fn(usize) -> S + Sync,
        S: Send + std::iter::Sum<S>,
    {
        let f = &self.f;
        let chunks = chunks_of(&self.base.range, self.base.min_len);
        run_chunks(chunks, |c| c.map(f).sum::<S>())
            .into_iter()
            .sum()
    }

    /// Reduce all mapped values with `op`, seeding each chunk with
    /// `identity()`.
    pub fn reduce<S, I, O>(self, identity: I, op: O) -> S
    where
        F: Fn(usize) -> S + Sync,
        S: Send,
        I: Fn() -> S + Sync,
        O: Fn(S, S) -> S + Sync,
    {
        let f = &self.f;
        let op_ref = &op;
        let chunks = chunks_of(&self.base.range, self.base.min_len);
        run_chunks(chunks, |c| c.map(f).fold(identity(), op_ref))
            .into_iter()
            .fold(identity(), op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        (10..90).into_par_iter().with_min_len(7).for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            let expected = usize::from((10..90).contains(&i));
            assert_eq!(h.load(Ordering::Relaxed), expected, "index {i}");
        }
    }

    #[test]
    fn sum_matches_sequential() {
        let expected: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
        let got: f64 = (0..1000)
            .into_par_iter()
            .with_min_len(16)
            .map(|i| (i as f64).sqrt())
            .sum();
        assert!((got - expected).abs() < 1e-9 * expected);
    }

    #[test]
    fn sum_is_deterministic() {
        let run = || -> f64 {
            (0..4096)
                .into_par_iter()
                .with_min_len(8)
                .map(|i| 1.0 / (1.0 + i as f64))
                .sum()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn reduce_max() {
        let m = (0..500)
            .into_par_iter()
            .with_min_len(3)
            .map(|i| ((i * 7919) % 1000) as f64)
            .reduce(|| f64::NEG_INFINITY, f64::max);
        let expected = (0..500)
            .map(|i| ((i * 7919) % 1000) as f64)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(m, expected);
    }

    #[test]
    fn empty_range() {
        (5..5).into_par_iter().for_each(|_| panic!("must not run"));
        let s: f64 = (5..5).into_par_iter().map(|_| 1.0).sum();
        assert_eq!(s, 0.0);
    }
}
