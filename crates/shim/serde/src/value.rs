//! The owned JSON value model shared by the `serde` and `serde_json`
//! shims.

/// Object representation. `BTreeMap` keeps key order deterministic,
/// which makes serialized output stable across runs.
pub type Map = std::collections::BTreeMap<String, Value>;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// A JSON number: stored as the narrowest of `i64` / `u64` / `f64` that
/// represents the token, mirroring `serde_json::Number`.
#[derive(Clone, Copy, Debug)]
pub struct Number(N);

#[derive(Clone, Copy, Debug)]
enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    /// From a signed integer.
    pub fn from_i64(v: i64) -> Self {
        Number(N::I(v))
    }

    /// From an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number(N::U(v))
    }

    /// From a float. Non-finite values have no JSON representation and
    /// render as `null` (matching `serde_json`'s arbitrary-precision-off
    /// behaviour of refusing them); callers in this workspace only
    /// serialize finite values.
    pub fn from_f64(v: f64) -> Self {
        Number(N::F(v))
    }

    /// As `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I(v) => Some(v),
            N::U(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    /// As `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::I(v) => u64::try_from(v).ok(),
            N::U(v) => Some(v),
            N::F(_) => None,
        }
    }

    /// As `f64` (integers convert; `None` only for non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::I(v) => Some(v as f64),
            N::U(v) => Some(v as f64),
            N::F(v) => v.is_finite().then_some(v),
        }
    }

    /// Render the number as its JSON token.
    pub fn render(&self) -> String {
        match self.0 {
            N::I(v) => v.to_string(),
            N::U(v) => v.to_string(),
            N::F(v) => {
                if !v.is_finite() {
                    "null".to_string()
                } else if v == v.trunc() && v.abs() < 1e16 {
                    // Keep a fractional part so the token reads back as a
                    // float, exactly as serde_json prints 1.0 as "1.0".
                    format!("{v:.1}")
                } else {
                    // Rust's shortest-roundtrip formatting.
                    format!("{v}")
                }
            }
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_float_keeps_fraction() {
        assert_eq!(Number::from_f64(1.0).render(), "1.0");
        assert_eq!(Number::from_f64(-0.0).render(), "-0.0");
        assert_eq!(Number::from_i64(1).render(), "1");
    }

    #[test]
    fn float_roundtrips_through_render() {
        for v in [1.15, 1e-300, 4294967296.0, std::f64::consts::PI, -1e16] {
            let token = Number::from_f64(v).render();
            let back: f64 = token.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "token {token}");
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Number::from_u64(7).as_i64(), Some(7));
        assert_eq!(Number::from_i64(-1).as_u64(), None);
        assert_eq!(Number::from_i64(3).as_f64(), Some(3.0));
        assert_eq!(Number::from_f64(2.5).as_i64(), None);
    }
}
