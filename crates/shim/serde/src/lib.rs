//! API-compatible shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's zero-copy visitor architecture, [`Serialize`] and
//! [`Deserialize`] convert through an owned JSON-style [`value::Value`]
//! tree. `serde_json` (the sibling shim) renders and parses that tree.
//! The derive macros (re-exported from `serde_derive`) generate the same
//! external representation serde's derives produce for the shapes used
//! here: named-field structs as objects, unit enum variants as strings,
//! struct/tuple variants as single-key objects, and `#[serde(untagged)]`
//! enums as their bare payloads.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{Map, Number, Value};

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A missing struct field.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the JSON value model.
pub trait Serialize {
    /// Represent `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the JSON value model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n,
                    other => return Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                let u = n.as_u64().ok_or_else(|| Error::custom(
                    concat!("expected unsigned ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::custom(
                    concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n,
                    other => return Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                let i = n.as_i64().ok_or_else(|| Error::custom(
                    concat!("expected integer ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom(
                    concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => n.as_f64().ok_or_else(|| Error::custom("non-finite number")),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

// ---- container impls ------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<&str, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert((*k).to_string(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&300u32.to_value()).is_err());
        assert!(u32::from_value(&(-1i64).to_value()).is_err());
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1.0f64, -2.5, 3.25];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn int_value_deserializes_as_f64() {
        // JSON "1" must satisfy an f64 field.
        let v = 1u64.to_value();
        assert_eq!(f64::from_value(&v).unwrap(), 1.0);
    }
}
