//! Packed symmetric band storage and band Cholesky factorization —
//! the from-scratch equivalent of LAPACK's `DPBTRF` + `DPBTRS`
//! (together: `DPBSV`), which the paper uses as its direct solver.

use std::fmt;

/// Errors from direct factorizations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not positive definite (a non-positive pivot was
    /// encountered at the given index).
    NotPositiveDefinite(usize),
    /// Right-hand side length does not match the system size.
    DimensionMismatch { expected: usize, got: usize },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite(i) => {
                write!(f, "matrix not positive definite (pivot {i})")
            }
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// A symmetric positive-definite band matrix in packed lower storage.
///
/// For an `n×n` matrix with `m` sub-diagonals, entry `A(i, i-d)` for
/// `d ∈ 0..=m` is stored at `data[i*(m+1) + d]`; everything below the
/// band is structurally zero and the upper triangle is implied by
/// symmetry. Storage is `n·(m+1)` doubles — the same footprint as
/// LAPACK's `AB` array.
#[derive(Clone, Debug, PartialEq)]
pub struct BandMatrix {
    n: usize,
    m: usize,
    data: Vec<f64>,
}

impl BandMatrix {
    /// An all-zero band matrix of size `n` with bandwidth `m`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn zeros(n: usize, m: usize) -> Self {
        assert!(n > 0, "empty matrix");
        let m = m.min(n - 1);
        BandMatrix {
            n,
            m,
            data: vec![0.0; n * (m + 1)],
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth (number of sub-diagonals).
    #[inline]
    pub fn bandwidth(&self) -> usize {
        self.m
    }

    /// Read `A(i, j)` (zero outside the band; symmetric).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        if d > self.m {
            0.0
        } else {
            self.data[hi * (self.m + 1) + d]
        }
    }

    /// Write `A(i, j) = v` (and `A(j, i)` by symmetry).
    ///
    /// # Panics
    /// Panics if `|i-j|` exceeds the bandwidth or indices are out of
    /// range.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "index out of range");
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        assert!(d <= self.m, "entry ({i},{j}) outside bandwidth {}", self.m);
        self.data[hi * (self.m + 1) + d] = v;
    }

    /// Dense `y = A·x` (test oracle; O(n·m)).
    #[allow(clippy::needless_range_loop)] // band index arithmetic reads clearest indexed
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "matvec dimension mismatch");
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let lo = i.saturating_sub(self.m);
            // Band row + symmetric column.
            let mut acc = 0.0;
            for j in lo..=i {
                acc += self.get(i, j) * x[j];
            }
            for j in i + 1..(i + self.m + 1).min(self.n) {
                acc += self.get(i, j) * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Band Cholesky factorization `A = L·Lᵀ` (≡ `DPBTRF`).
    ///
    /// O(n·m²) flops, O(n·m) storage. Fails with
    /// [`LinalgError::NotPositiveDefinite`] on a non-positive pivot.
    pub fn cholesky(&self) -> Result<BandCholesky, LinalgError> {
        let n = self.n;
        let m = self.m;
        let w = m + 1;
        let mut l = self.data.clone();
        for j in 0..n {
            // Pivot: L(j,j) = sqrt(A(j,j) - sum_k L(j,k)^2).
            let mut diag = l[j * w];
            let kmin = j.saturating_sub(m);
            for k in kmin..j {
                let v = l[j * w + (j - k)];
                diag -= v * v;
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite(j));
            }
            let pivot = diag.sqrt();
            l[j * w] = pivot;
            let inv_pivot = 1.0 / pivot;
            // Column below the pivot: L(i,j) for i in j+1..=j+m.
            let imax = (j + m).min(n - 1);
            for i in j + 1..=imax {
                let mut v = l[i * w + (i - j)];
                // sum_k L(i,k)*L(j,k) for k in [max(i-m, 0), j)
                let kmin = i.saturating_sub(m).max(kmin);
                for k in kmin..j {
                    v -= l[i * w + (i - k)] * l[j * w + (j - k)];
                }
                l[i * w + (i - j)] = v * inv_pivot;
            }
        }
        Ok(BandCholesky { n, m, l })
    }
}

/// The lower-triangular band Cholesky factor `L` with `A = L·Lᵀ`
/// (packed like [`BandMatrix`]). Reusable across many right-hand sides —
/// the autotuned solver exploits this by caching factors per grid size.
#[derive(Clone, Debug)]
pub struct BandCholesky {
    n: usize,
    m: usize,
    l: Vec<f64>,
}

impl BandCholesky {
    /// System size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth of the factor.
    #[inline]
    pub fn bandwidth(&self) -> usize {
        self.m
    }

    /// Solve `A·x = b` in place (≡ `DPBTRS`): forward substitution
    /// `L·y = b`, then backward substitution `Lᵀ·x = y`. O(n·m).
    #[allow(clippy::needless_range_loop)] // triangular-solve recurrences are index-coupled
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                got: b.len(),
            });
        }
        let (n, m, w) = (self.n, self.m, self.m + 1);
        // Forward: y_i = (b_i - sum_{k<i} L(i,k) y_k) / L(i,i)
        for i in 0..n {
            let kmin = i.saturating_sub(m);
            let mut v = b[i];
            for k in kmin..i {
                v -= self.l[i * w + (i - k)] * b[k];
            }
            b[i] = v / self.l[i * w];
        }
        // Backward: x_i = (y_i - sum_{k>i} L(k,i) x_k) / L(i,i)
        for i in (0..n).rev() {
            let kmax = (i + m).min(n - 1);
            let mut v = b[i];
            for k in i + 1..=kmax {
                v -= self.l[k * w + (k - i)] * b[k];
            }
            b[i] = v / self.l[i * w];
        }
        Ok(())
    }

    /// Solve into a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }
}

/// Factor-and-solve in one call, mirroring LAPACK `DPBSV`.
pub fn dpbsv(a: &BandMatrix, b: &mut [f64]) -> Result<(), LinalgError> {
    a.cholesky()?.solve_in_place(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 1D Poisson matrix: tridiagonal (2, -1).
    fn poisson_1d(n: usize) -> BandMatrix {
        let mut a = BandMatrix::zeros(n, 1);
        for i in 0..n {
            a.set(i, i, 2.0);
            if i > 0 {
                a.set(i, i - 1, -1.0);
            }
        }
        a
    }

    #[test]
    fn get_set_symmetry_and_band_zero() {
        let mut a = BandMatrix::zeros(5, 2);
        a.set(3, 1, 7.0);
        assert_eq!(a.get(3, 1), 7.0);
        assert_eq!(a.get(1, 3), 7.0);
        assert_eq!(a.get(0, 4), 0.0); // outside band
        assert_eq!(a.bandwidth(), 2);
    }

    #[test]
    #[should_panic(expected = "outside bandwidth")]
    fn set_outside_band_panics() {
        let mut a = BandMatrix::zeros(5, 1);
        a.set(0, 3, 1.0);
    }

    #[test]
    fn bandwidth_clamped_to_n_minus_1() {
        let a = BandMatrix::zeros(3, 100);
        assert_eq!(a.bandwidth(), 2);
    }

    #[test]
    fn cholesky_identity() {
        let mut a = BandMatrix::zeros(4, 0);
        for i in 0..4 {
            a.set(i, i, 1.0);
        }
        let ch = a.cholesky().unwrap();
        let x = ch.solve(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn solve_poisson_1d_known_solution() {
        // 2x_i - x_{i-1} - x_{i+1} = 0 with "boundary" folded in:
        // solve A x = e_0; exact solution x_i = (n - i)/(n + 1).
        let n = 10;
        let a = poisson_1d(n);
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        dpbsv(&a, &mut b).unwrap();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let exact = (n - i) as f64 / (n + 1) as f64;
            assert!((b[i] - exact).abs() < 1e-12, "x[{i}] = {} vs {exact}", b[i]);
        }
    }

    #[test]
    fn residual_small_after_solve() {
        // Diagonally dominant random-ish SPD band matrix.
        let n = 40;
        let m = 5;
        let mut a = BandMatrix::zeros(n, m);
        for i in 0..n {
            a.set(i, i, 10.0 + (i % 3) as f64);
            for d in 1..=m.min(i) {
                a.set(i, i - d, -1.0 / (d as f64 + ((i * 7 + d) % 4) as f64));
            }
        }
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 17) as f64 - 8.0).collect();
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-9, "residual at {i}");
        }
    }

    #[test]
    fn not_positive_definite_detected() {
        let mut a = BandMatrix::zeros(3, 1);
        a.set(0, 0, 1.0);
        a.set(1, 1, -2.0); // negative diagonal: not PD
        a.set(2, 2, 1.0);
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite(_))
        ));
    }

    #[test]
    fn indefinite_from_off_diagonal_detected() {
        // [[1, 2], [2, 1]] has eigenvalues 3, -1.
        let mut a = BandMatrix::zeros(2, 1);
        a.set(0, 0, 1.0);
        a.set(1, 1, 1.0);
        a.set(1, 0, 2.0);
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = poisson_1d(4);
        let ch = a.cholesky().unwrap();
        let mut b = vec![0.0; 3];
        assert!(matches!(
            ch.solve_in_place(&mut b),
            Err(LinalgError::DimensionMismatch {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn factor_reuse_multiple_rhs() {
        let a = poisson_1d(8);
        let ch = a.cholesky().unwrap();
        for seed in 0..5u64 {
            let b: Vec<f64> = (0..8).map(|i| ((i as u64 + seed) % 7) as f64).collect();
            let x = ch.solve(&b).unwrap();
            let ax = a.matvec(&x);
            for i in 0..8 {
                assert!((ax[i] - b[i]).abs() < 1e-12);
            }
        }
    }
}
