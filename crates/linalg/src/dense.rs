//! Small dense solvers used as oracles in tests and for the 3×3
//! multigrid base case (one interior unknown).

use crate::LinalgError;

/// A dense row-major square matrix (small sizes only; O(n³) solvers).
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "empty matrix");
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Read `A(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Write `A(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.get(i, j) * x[j]).sum())
            .collect()
    }

    /// Dense Cholesky solve for SPD matrices (oracle for the band
    /// version).
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                got: b.len(),
            });
        }
        let n = self.n;
        let mut l = vec![0.0; n * n];
        for j in 0..n {
            let mut diag = self.get(j, j);
            for k in 0..j {
                diag -= l[j * n + k] * l[j * n + k];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite(j));
            }
            let pivot = diag.sqrt();
            l[j * n + j] = pivot;
            for i in j + 1..n {
                let mut v = self.get(i, j);
                for k in 0..j {
                    v -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = v / pivot;
            }
        }
        let mut x = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                x[i] -= l[i * n + k] * x[k];
            }
            x[i] /= l[i * n + i];
        }
        for i in (0..n).rev() {
            for k in i + 1..n {
                x[i] -= l[k * n + i] * x[k];
            }
            x[i] /= l[i * n + i];
        }
        Ok(x)
    }

    /// Gaussian elimination with partial pivoting (general oracle).
    pub fn gauss_solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                got: b.len(),
            });
        }
        let n = self.n;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot_row = r;
                }
            }
            if best == 0.0 {
                return Err(LinalgError::NotPositiveDefinite(col)); // singular
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let inv = 1.0 / a[col * n + col];
            for r in col + 1..n {
                let factor = a[r * n + col] * inv;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        for i in (0..n).rev() {
            for j in i + 1..n {
                x[i] -= a[i * n + j] * x[j];
            }
            x[i] /= a[i * n + i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> DenseMatrix {
        // A = M^T M + I for M with entries (i*3+j)%5, guaranteed SPD.
        let n = 6;
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, ((i * 3 + j) % 5) as f64 - 1.5);
            }
        }
        let mut a = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let mut v = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    v += m.get(k, i) * m.get(k, j);
                }
                a.set(i, j, v);
            }
        }
        a
    }

    #[test]
    fn cholesky_and_gauss_agree_on_spd() {
        let a = spd_example();
        let b: Vec<f64> = (0..a.n()).map(|i| i as f64 - 2.0).collect();
        let x1 = a.cholesky_solve(&b).unwrap();
        let x2 = a.gauss_solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-9);
        }
        let ax = a.matvec(&x1);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn gauss_handles_permutation_needed() {
        // First pivot is zero: [[0,1],[1,0]] x = [3,4] -> x = [4,3].
        let mut a = DenseMatrix::zeros(2);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        let x = a.gauss_solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut a = DenseMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        assert!(a.gauss_solve(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn non_spd_rejected_by_cholesky() {
        let mut a = DenseMatrix::zeros(2);
        a.set(0, 0, 0.0);
        a.set(1, 1, 1.0);
        assert!(matches!(
            a.cholesky_solve(&[1.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite(0))
        ));
    }
}
