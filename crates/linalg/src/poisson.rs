//! Direct solution of the 2D discrete Poisson system over a grid's
//! interior: assembly of the 5-point band matrix and the boundary-aware
//! solve. This is the "Solve directly" choice of the paper's
//! `MULTIGRID-V` (band Cholesky through a DPBSV-equivalent).

use crate::{BandCholesky, BandMatrix, LinalgError};
use petamg_grid::{Exec, Grid2d};

/// Assemble the SPD band matrix of the 5-point operator
/// `A_h u = (4u − Σ neighbors)/h²` over the `(n-2)²` interior unknowns of
/// an `n×n` grid, in row-major interior ordering. Bandwidth is `n-2`.
pub fn assemble_poisson_band(n: usize) -> BandMatrix {
    assert!(n >= 3, "grid too small");
    let k = n - 2; // interior points per side
    let unknowns = k * k;
    let inv_h2 = {
        let nm1 = (n - 1) as f64;
        nm1 * nm1
    };
    let mut a = BandMatrix::zeros(unknowns, k);
    for i in 0..k {
        for j in 0..k {
            let u = i * k + j;
            a.set(u, u, 4.0 * inv_h2);
            if j > 0 {
                a.set(u, u - 1, -inv_h2);
            }
            if i > 0 {
                a.set(u, u - k, -inv_h2);
            }
        }
    }
    a
}

/// A reusable direct solver for the interior Poisson system of one grid
/// size: the band Cholesky factor plus scratch for the RHS.
///
/// Factorization costs O(n²·(n-2)²) once; each solve is O(n·(n-2)²)...
/// in grid terms: factor O(N⁴), solve O(N³) for an N×N grid — the `n²`
/// total-complexity entry of the paper's §2 table.
#[derive(Clone, Debug)]
pub struct PoissonDirect {
    n: usize,
    factor: BandCholesky,
}

impl PoissonDirect {
    /// Factor the interior system for `n×n` grids.
    pub fn new(n: usize) -> Result<Self, LinalgError> {
        let a = assemble_poisson_band(n);
        Ok(PoissonDirect {
            n,
            factor: a.cholesky()?,
        })
    }

    /// Grid size this solver was factored for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solve `A_h x = b` exactly: reads `b`'s interior and `x`'s boundary
    /// ring (Dirichlet data), overwrites `x`'s interior with the solution.
    ///
    /// # Panics
    /// Panics if grid sizes don't match the factored size.
    pub fn solve(&self, x: &mut Grid2d, b: &Grid2d) {
        assert_eq!(x.n(), self.n, "x size mismatch");
        assert_eq!(b.n(), self.n, "b size mismatch");
        let n = self.n;
        let k = n - 2;
        let inv_h2 = x.inv_h2();
        // RHS: interior b plus boundary contributions moved to the right:
        // unknown neighbors stay in the matrix; each boundary neighbor v
        // contributes +v/h².
        let mut rhs = vec![0.0; k * k];
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let mut v = b.at(i, j);
                if i == 1 {
                    v += inv_h2 * x.at(0, j);
                }
                if i == n - 2 {
                    v += inv_h2 * x.at(n - 1, j);
                }
                if j == 1 {
                    v += inv_h2 * x.at(i, 0);
                }
                if j == n - 2 {
                    v += inv_h2 * x.at(i, n - 1);
                }
                rhs[(i - 1) * k + (j - 1)] = v;
            }
        }
        self.factor
            .solve_in_place(&mut rhs)
            .expect("factored system must accept matching RHS");
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                x.set(i, j, rhs[(i - 1) * k + (j - 1)]);
            }
        }
    }

    /// Convenience: residual L2 norm after a solve (diagnostic).
    pub fn residual_norm(&self, x: &Grid2d, b: &Grid2d) -> f64 {
        let mut r = Grid2d::zeros(self.n);
        petamg_grid::residual(x, b, &mut r, &Exec::seq());
        petamg_grid::l2_norm_interior(&r, &Exec::seq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petamg_grid::l2_norm_interior;

    #[test]
    fn assembled_matrix_shape() {
        let a = assemble_poisson_band(5);
        assert_eq!(a.n(), 9);
        assert_eq!(a.bandwidth(), 3);
        let inv_h2 = 16.0;
        assert_eq!(a.get(0, 0), 4.0 * inv_h2);
        assert_eq!(a.get(0, 1), -inv_h2);
        assert_eq!(a.get(0, 3), -inv_h2);
        assert_eq!(a.get(0, 2), 0.0); // same row, two apart
                                      // Row wrap: unknown 2 (end of row 0) and 3 (start of row 1) are
                                      // NOT neighbors in the grid.
        assert_eq!(a.get(2, 3), 0.0);
    }

    #[test]
    fn base_case_3x3_single_unknown() {
        // N=3: one interior point; 4·x/h² − (boundary)/h² = b.
        let solver = PoissonDirect::new(3).unwrap();
        let mut x = Grid2d::zeros(3);
        x.set_boundary(|_, _| 1.0);
        let b = Grid2d::from_fn(3, |_, _| 8.0);
        solver.solve(&mut x, &b);
        // 4x/h² = b + 4·1/h² with h=1/2 → inv_h2=4: 16x = 8 + 16 → x=1.5
        assert!((x.at(1, 1) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn exact_on_manufactured_solution() {
        // u = x² + y² (stencil-exact), f = A_h u = -4.
        for n in [5, 9, 17, 33] {
            let h = 1.0 / (n as f64 - 1.0);
            let exact = Grid2d::from_fn(n, |i, j| {
                let (xx, yy) = (j as f64 * h, i as f64 * h);
                xx * xx + yy * yy
            });
            let b = Grid2d::from_fn(n, |_, _| -4.0);
            let mut x = Grid2d::zeros(n);
            x.copy_boundary_from(&exact);
            let solver = PoissonDirect::new(n).unwrap();
            solver.solve(&mut x, &b);
            let mut diff = x.clone();
            diff.axpy(-1.0, &exact);
            let err = l2_norm_interior(&diff, &Exec::seq());
            assert!(err < 1e-9, "n={n}: err={err}");
        }
    }

    #[test]
    fn residual_is_machine_small_on_random_data() {
        let n = 17;
        let mut x = Grid2d::zeros(n);
        x.set_boundary(|i, j| ((i * 31 + j * 17) % 13) as f64 * 1e3 - 6e3);
        let b = Grid2d::from_fn(n, |i, j| ((i * 7 + j * 3) % 23) as f64 * 1e4 - 1e5);
        let solver = PoissonDirect::new(n).unwrap();
        solver.solve(&mut x, &b);
        let rnorm = solver.residual_norm(&x, &b);
        let bnorm = l2_norm_interior(&b, &Exec::seq());
        assert!(
            rnorm <= 1e-9 * bnorm.max(1.0),
            "rel residual {}",
            rnorm / bnorm
        );
    }

    #[test]
    fn solve_is_deterministic() {
        let n = 9;
        let b = Grid2d::from_fn(n, |i, j| (i * n + j) as f64);
        let solver = PoissonDirect::new(n).unwrap();
        let run = || {
            let mut x = Grid2d::zeros(n);
            solver.solve(&mut x, &b);
            x
        };
        assert_eq!(run().as_slice(), run().as_slice());
    }

    #[test]
    fn matches_dense_oracle() {
        use crate::DenseMatrix;
        let n = 7; // 25 unknowns
        let k = n - 2;
        let band = assemble_poisson_band(n);
        let mut dense = DenseMatrix::zeros(k * k);
        for i in 0..k * k {
            for j in 0..k * k {
                dense.set(i, j, band.get(i, j));
            }
        }
        let rhs: Vec<f64> = (0..k * k).map(|i| ((i * 11) % 19) as f64 - 9.0).collect();
        let x_band = band.cholesky().unwrap().solve(&rhs).unwrap();
        let x_dense = dense.cholesky_solve(&rhs).unwrap();
        for (u, v) in x_band.iter().zip(&x_dense) {
            assert!((u - v).abs() < 1e-9);
        }
    }
}
