//! Property-based tests: band Cholesky against dense oracles on random
//! SPD band systems.

use crate::{BandMatrix, DenseMatrix};
use proptest::prelude::*;

/// Strategy: a random SPD band matrix built as diagonally dominant:
/// off-diagonals in [-1, 1], diagonal = band row-sum + margin.
fn spd_band(n: usize, m: usize) -> impl Strategy<Value = BandMatrix> {
    let offs = n * m; // generous upper bound on off-diagonal count
    (prop::collection::vec(-1.0f64..1.0, offs), 0.5f64..5.0).prop_map(move |(vals, margin)| {
        let mut a = BandMatrix::zeros(n, m);
        let mut it = vals.into_iter();
        for i in 0..n {
            for d in 1..=m.min(i) {
                a.set(i, i - d, it.next().unwrap());
            }
        }
        // Diagonal dominance => SPD.
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in i.saturating_sub(m)..(i + m + 1).min(n) {
                if j != i {
                    row_sum += a.get(i, j).abs();
                }
            }
            a.set(i, i, row_sum + margin);
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Band Cholesky solution satisfies A x = b to high relative accuracy.
    #[test]
    fn band_solve_residual_small(
        a in spd_band(24, 4),
        b in prop::collection::vec(-100.0f64..100.0, 24),
    ) {
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x);
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1.0);
        for i in 0..24 {
            prop_assert!((ax[i] - b[i]).abs() < 1e-9 * bnorm);
        }
    }

    /// Band and dense Cholesky agree.
    #[test]
    fn band_matches_dense(
        a in spd_band(16, 3),
        b in prop::collection::vec(-10.0f64..10.0, 16),
    ) {
        let x_band = a.cholesky().unwrap().solve(&b).unwrap();
        let mut dense = DenseMatrix::zeros(16);
        for i in 0..16 {
            for j in 0..16 {
                dense.set(i, j, a.get(i, j));
            }
        }
        let x_dense = dense.cholesky_solve(&b).unwrap();
        for (u, v) in x_band.iter().zip(&x_dense) {
            prop_assert!((u - v).abs() < 1e-8 * v.abs().max(1.0));
        }
    }

    /// Solving is linear in the RHS: solve(αb₁ + b₂) = α·solve(b₁) + solve(b₂).
    #[test]
    fn solve_linear_in_rhs(
        a in spd_band(12, 2),
        b1 in prop::collection::vec(-10.0f64..10.0, 12),
        b2 in prop::collection::vec(-10.0f64..10.0, 12),
        alpha in -3.0f64..3.0,
    ) {
        let ch = a.cholesky().unwrap();
        let x1 = ch.solve(&b1).unwrap();
        let x2 = ch.solve(&b2).unwrap();
        let combo: Vec<f64> = b1.iter().zip(&b2).map(|(u, v)| alpha * u + v).collect();
        let xc = ch.solve(&combo).unwrap();
        for i in 0..12 {
            let lin = alpha * x1[i] + x2[i];
            prop_assert!((xc[i] - lin).abs() < 1e-8 * lin.abs().max(1.0));
        }
    }

    /// The factor's diagonal is strictly positive (definition of the
    /// Cholesky factor of an SPD matrix).
    #[test]
    fn factor_reconstructs_matrix(a in spd_band(10, 3)) {
        // Verify L·Lᵀ == A entrywise by probing with basis vectors:
        // A e_j  computed via matvec vs via factor-based solve roundtrip.
        let ch = a.cholesky().unwrap();
        for j in 0..10 {
            let mut e = vec![0.0; 10];
            e[j] = 1.0;
            let col = a.matvec(&e);          // A e_j
            let back = ch.solve(&col).unwrap(); // A⁻¹ A e_j = e_j
            #[allow(clippy::needless_range_loop)]
            for i in 0..10 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((back[i] - expect).abs() < 1e-8);
            }
        }
    }
}
