//! The Thomas algorithm for tridiagonal systems — O(n), used as the 1D
//! Poisson oracle and in tests of the band machinery.

use crate::LinalgError;

/// Solve a tridiagonal system with sub-diagonal `a` (length n-1),
/// diagonal `b` (length n) and super-diagonal `c` (length n-1).
///
/// Returns the solution vector. No pivoting — intended for diagonally
/// dominant systems such as discrete Laplacians.
pub fn tridiagonal_solve(
    a: &[f64],
    b: &[f64],
    c: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, LinalgError> {
    let n = b.len();
    if a.len() != n.saturating_sub(1) || c.len() != n.saturating_sub(1) || rhs.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            got: rhs.len(),
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut cp = vec![0.0; n];
    let mut dp = vec![0.0; n];
    if b[0] == 0.0 {
        return Err(LinalgError::NotPositiveDefinite(0));
    }
    cp[0] = if n > 1 { c[0] / b[0] } else { 0.0 };
    dp[0] = rhs[0] / b[0];
    for i in 1..n {
        let denom = b[i] - a[i - 1] * cp[i - 1];
        if denom == 0.0 {
            return Err(LinalgError::NotPositiveDefinite(i));
        }
        cp[i] = if i + 1 < n { c[i] / denom } else { 0.0 };
        dp[i] = (rhs[i] - a[i - 1] * dp[i - 1]) / denom;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = dp[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = dp[i] - cp[i] * x[i + 1];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_1d_poisson() {
        // -x_{i-1} + 2x_i - x_{i+1} = h^2 * f with f = 2, zero boundary:
        // exact solution of -u'' = 2 is u = x(1-x).
        let n = 63;
        let h = 1.0 / (n as f64 + 1.0);
        let sub = vec![-1.0; n - 1];
        let diag = vec![2.0; n];
        let sup = vec![-1.0; n - 1];
        let rhs = vec![2.0 * h * h; n];
        let x = tridiagonal_solve(&sub, &diag, &sup, &rhs).unwrap();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let xi = (i + 1) as f64 * h;
            let exact = xi * (1.0 - xi);
            assert!((x[i] - exact).abs() < 1e-12, "at {i}: {} vs {exact}", x[i]);
        }
    }

    #[test]
    fn matches_band_cholesky() {
        use crate::BandMatrix;
        let n = 20;
        let sub: Vec<f64> = (0..n - 1).map(|i| -0.5 - ((i % 3) as f64) * 0.1).collect();
        let diag: Vec<f64> = (0..n).map(|i| 3.0 + (i % 5) as f64 * 0.2).collect();
        let rhs: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();

        let x1 = tridiagonal_solve(&sub, &diag, &sub, &rhs).unwrap();

        let mut band = BandMatrix::zeros(n, 1);
        for i in 0..n {
            band.set(i, i, diag[i]);
            if i > 0 {
                band.set(i, i - 1, sub[i - 1]);
            }
        }
        let x2 = band.cholesky().unwrap().solve(&rhs).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn single_unknown() {
        let x = tridiagonal_solve(&[], &[4.0], &[], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn dimension_mismatch() {
        assert!(tridiagonal_solve(&[1.0], &[1.0, 1.0], &[1.0], &[1.0]).is_err());
    }

    #[test]
    fn empty_system() {
        assert_eq!(
            tridiagonal_solve(&[], &[], &[], &[]).unwrap(),
            Vec::<f64>::new()
        );
    }
}
