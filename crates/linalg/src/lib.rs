//! # petamg-linalg
//!
//! Direct linear-algebra kernels for the PetaBricks multigrid
//! reproduction. The paper's direct solver is *"band Cholesky
//! factorization through LAPACK's DPBSV routine"* (§2); this crate
//! implements that routine from scratch:
//!
//! * [`BandMatrix`] — packed symmetric positive-definite band storage,
//! * [`BandCholesky`] — the `L·Lᵀ` factorization (O(n·m²)) with
//!   O(n·m) forward/backward solves,
//! * [`dpbsv`] — the one-call factor-and-solve entry point mirroring
//!   LAPACK's interface,
//! * [`DenseMatrix`] — small dense Cholesky + Gaussian elimination used
//!   as test oracles,
//! * [`tridiagonal_solve`] — Thomas algorithm (1D Poisson oracle),
//! * [`PoissonDirect`] — assembly of the 2D 5-point system over a grid's
//!   interior and the boundary-aware direct solve used as the multigrid
//!   base case and as the "Direct" algorithmic choice in the autotuner.

mod band;
mod dense;
mod poisson;
mod tridiag;

pub use band::{dpbsv, BandCholesky, BandMatrix, LinalgError};
pub use dense::DenseMatrix;
pub use poisson::{assemble_poisson_band, PoissonDirect};
pub use tridiag::tridiagonal_solve;

#[cfg(test)]
mod proptests;
