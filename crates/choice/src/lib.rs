//! # petamg-choice
//!
//! A library-level reproduction of the PetaBricks *choice framework*
//! (paper §3): algorithmic choices and tunable parameters live in a flat
//! configuration space; the autotuner explores that space bottom-up —
//! starting from small inputs and doubling — with a population-based
//! genetic search, and optimizes scalar parameters (cutoffs, block
//! sizes, iteration counts) with an n-ary search. Tuned configurations
//! serialize to JSON files, mirroring PetaBricks' tuned-configuration
//! files that subsequent runs load.
//!
//! The paper's multigrid tuner (in `petamg-core`) uses its own dynamic
//! programming strategy on top of this substrate; this crate provides
//! the *generic* machinery (§3.2.2) plus a demonstration [`demo::SortTransform`]
//! matching the paper's introductory sort-cutoff example.

pub mod demo;
pub mod genetic;
pub mod nary;
pub mod space;
pub mod transform;

pub use genetic::{GeneticTuner, GeneticTunerOptions, MultiLevelConfig, Tunable, TuneResult};
pub use nary::{nary_search_f64, nary_search_int};
pub use space::{
    kernel_exec_space, problem_space, tuning_order, Config, ConfigError, ConfigSpace, KernelKnobs,
    KnobTable, ParamId, ParamKind, ParamSpec, ParamValue, Scale, KNOB_TABLE_VERSION,
    PARAM_BAND_ROWS, PARAM_PROBLEM, PARAM_SIMD, PARAM_TBLOCK, PROBLEM_FAMILY_LABELS,
};

// The vectorization policy type itself lives with the kernels in
// `petamg-grid`; re-export it so knob-table consumers need only this
// crate.
pub use petamg_grid::SimdPolicy;
