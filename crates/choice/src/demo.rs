//! Demonstration transform: tunable sorting with an algorithm switch and
//! a divide-and-conquer cutoff — the paper's introductory example ("in
//! the C++ Standard Template Library's sort routine, the algorithm
//! switches from ... merge sort to ... insertion sort once the working
//! array size falls below a set cutoff").
//!
//! Used by tests, the `sort_autotune` example, and the choice-framework
//! benchmarks.

use crate::space::{Config, ConfigSpace, ParamId, Scale};
use crate::Tunable;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Top-level sorting strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortAlgo {
    /// O(n²), tiny constant — wins on small arrays.
    Insertion,
    /// Divide-and-conquer with insertion below the cutoff.
    Merge,
    /// Divide-and-conquer (Hoare partition) with insertion below the
    /// cutoff.
    Quick,
}

impl SortAlgo {
    /// All variants (indexable by switch value).
    pub const ALL: [SortAlgo; 3] = [SortAlgo::Insertion, SortAlgo::Merge, SortAlgo::Quick];
}

/// A tunable sort "transform": `algorithm` switch + `cutoff` int.
pub struct SortTransform {
    space: ConfigSpace,
    algo: ParamId,
    cutoff: ParamId,
    rng: StdRng,
}

impl Default for SortTransform {
    fn default() -> Self {
        Self::new(0xC0FFEE)
    }
}

impl SortTransform {
    /// Build with an RNG seed for the benchmark inputs used in
    /// `evaluate`.
    pub fn new(seed: u64) -> Self {
        let mut space = ConfigSpace::new();
        let algo = space.add_switch("algorithm", &["insertion", "merge", "quick"], 1);
        let cutoff = space.add_int("cutoff", 1, 4096, 32, Scale::Log);
        space.add_dependency(algo, cutoff); // pick cutoff before algorithm
        SortTransform {
            space,
            algo,
            cutoff,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The `algorithm` parameter id.
    pub fn algo_param(&self) -> ParamId {
        self.algo
    }

    /// The `cutoff` parameter id.
    pub fn cutoff_param(&self) -> ParamId {
        self.cutoff
    }

    /// Run the configured sort on `data`.
    pub fn sort(&self, config: &Config, data: &mut [u64]) {
        let cutoff = config.int(self.cutoff).max(1) as usize;
        match SortAlgo::ALL[config.switch(self.algo)] {
            SortAlgo::Insertion => insertion_sort(data),
            SortAlgo::Merge => {
                let mut scratch = data.to_vec();
                merge_sort(data, &mut scratch, cutoff);
            }
            SortAlgo::Quick => quick_sort(data, cutoff),
        }
    }
}

impl Tunable for SortTransform {
    fn space(&self) -> ConfigSpace {
        self.space.clone()
    }

    fn evaluate(&mut self, config: &Config, size: usize) -> f64 {
        // Median of three timed runs on fresh random data.
        let mut times = [0.0f64; 3];
        for t in &mut times {
            let mut data: Vec<u64> = (0..size).map(|_| self.rng.random()).collect();
            let start = Instant::now();
            self.sort(config, &mut data);
            *t = start.elapsed().as_secs_f64();
            debug_assert!(data.windows(2).all(|w| w[0] <= w[1]));
        }
        times.sort_by(f64::total_cmp);
        times[1]
    }
}

/// In-place insertion sort.
pub fn insertion_sort(data: &mut [u64]) {
    for i in 1..data.len() {
        let mut j = i;
        let v = data[i];
        while j > 0 && data[j - 1] > v {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = v;
    }
}

/// Merge sort with insertion-sort leaves below `cutoff`.
pub fn merge_sort(data: &mut [u64], scratch: &mut [u64], cutoff: usize) {
    let n = data.len();
    if n <= cutoff.max(1) || n <= 1 {
        insertion_sort(data);
        return;
    }
    let mid = n / 2;
    {
        let (dl, dr) = data.split_at_mut(mid);
        let (sl, sr) = scratch.split_at_mut(mid);
        merge_sort(dl, sl, cutoff);
        merge_sort(dr, sr, cutoff);
    }
    // Merge halves through scratch.
    scratch[..n].copy_from_slice(data);
    let (left, right) = scratch[..n].split_at(mid);
    let (mut i, mut j) = (0usize, 0usize);
    for slot in data.iter_mut() {
        if i < left.len() && (j >= right.len() || left[i] <= right[j]) {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

/// Quicksort (Hoare partition, median-of-three pivot placed at index 0)
/// with insertion-sort leaves below `cutoff`.
///
/// With the pivot at the low end and the pre-increment/pre-decrement
/// scan structure, the returned split always satisfies `j <= n-2`, so
/// both recursive halves strictly shrink (no adversarial-input stack
/// overflow).
pub fn quick_sort(data: &mut [u64], cutoff: usize) {
    let n = data.len();
    if n <= cutoff.max(1) || n <= 1 {
        insertion_sort(data);
        return;
    }
    // Median-of-three: move the median of {first, middle, last} to
    // index 0, where the Hoare scheme requires the pivot.
    let mid = n / 2;
    if data[mid] < data[0] {
        data.swap(0, mid);
    }
    if data[n - 1] < data[0] {
        data.swap(0, n - 1);
    }
    // data[0] is now the minimum of the three; the median is the
    // smaller of the remaining two.
    if data[n - 1] < data[mid] {
        data.swap(mid, n - 1);
    }
    data.swap(0, mid);
    let pivot = data[0];

    // CLRS Hoare partition with pre-moves emulated in unsigned math.
    let mut i = 0usize; // last index confirmed on the left side
    let mut j = n; // pre-decremented before every comparison
    let mut first = true;
    loop {
        j -= 1;
        while data[j] > pivot {
            j -= 1; // terminates: data[0] == pivot
        }
        if first {
            first = false; // i starts at 0 where data[0] == pivot
        } else {
            i += 1;
        }
        while data[i] < pivot {
            i += 1; // terminates: data[j] >= ... bounded by pivot slot
        }
        if i >= j {
            break;
        }
        data.swap(i, j);
    }
    let (l, r) = data.split_at_mut(j + 1);
    quick_sort(l, cutoff);
    quick_sort(r, cutoff);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneticTuner, GeneticTunerOptions};

    fn random_data(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random()).collect()
    }

    fn assert_sorts(f: impl Fn(&mut [u64])) {
        for (n, seed) in [(0, 1), (1, 2), (2, 3), (17, 4), (100, 5), (1000, 6)] {
            let mut data = random_data(n, seed);
            let mut expect = data.clone();
            expect.sort_unstable();
            f(&mut data);
            assert_eq!(data, expect, "n={n}");
        }
        // Adversarial patterns.
        for pattern in [
            vec![5u64, 4, 3, 2, 1],
            vec![1u64; 64],
            (0..64u64).collect::<Vec<_>>(),
        ] {
            let mut data = pattern.clone();
            let mut expect = pattern.clone();
            expect.sort_unstable();
            f(&mut data);
            assert_eq!(data, expect);
        }
    }

    #[test]
    fn insertion_sort_correct() {
        assert_sorts(insertion_sort);
    }

    #[test]
    fn merge_sort_correct_all_cutoffs() {
        for cutoff in [1, 2, 8, 64, 10_000] {
            assert_sorts(|d| {
                let mut scratch = d.to_vec();
                merge_sort(d, &mut scratch, cutoff);
            });
        }
    }

    #[test]
    fn quick_sort_correct_all_cutoffs() {
        for cutoff in [1, 2, 8, 64, 10_000] {
            assert_sorts(|d| quick_sort(d, cutoff));
        }
    }

    #[test]
    fn transform_sort_respects_config() {
        let t = SortTransform::default();
        let space = t.space();
        for algo in 0..3 {
            let mut cfg = space.default_config();
            cfg.set(&space, t.algo_param(), crate::ParamValue::Switch(algo))
                .unwrap();
            let mut data = random_data(500, 7 + algo as u64);
            let mut expect = data.clone();
            expect.sort_unstable();
            t.sort(&cfg, &mut data);
            assert_eq!(data, expect);
        }
    }

    #[test]
    fn tuned_sort_picks_divide_and_conquer_for_large_inputs() {
        let mut t = SortTransform::new(99);
        let mut tuner = GeneticTuner::new(GeneticTunerOptions {
            initial_size: 64,
            max_size: 16384,
            passes: 1,
            mutants_per_generation: 4,
            ..GeneticTunerOptions::default()
        });
        let result = tuner.tune(&mut t);
        let algo = result.best.switch(t.algo_param());
        assert_ne!(
            SortAlgo::ALL[algo],
            SortAlgo::Insertion,
            "insertion sort must lose at n=16384"
        );
    }
}
