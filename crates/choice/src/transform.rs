//! The PetaBricks compiler analysis (§3.2.1), as a library:
//!
//! > "In the first phase, applicable regions (regions where each rule can
//! > legally be applied) are calculated for each possible choice using an
//! > inference system. Next, the applicable regions are aggregated
//! > together into choice grids. The choice grid divides each matrix into
//! > rectilinear regions where uniform sets of rules may legally be
//! > applied. Finally, a choice dependency graph is constructed and
//! > analyzed. \[Its\] edges ... are annotated with the set of choices that
//! > require that edge, a direction of the data dependency, and an offset
//! > between rule centers."
//!
//! A [`Transform`] declares [`Rule`]s over a 2D output matrix; each rule
//! has an applicable region and a set of read offsets. The analysis
//! computes the rectilinear [`ChoiceGrid`], checks that every output
//! cell is covered, builds the [`ChoiceDepGraph`], and derives a wave
//! schedule that the executor runs (parallelizing independent cells via
//! `petamg-runtime`).

use petamg_runtime::ThreadPool;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A half-open rectilinear region `[x0, x1) × [y0, y1)` of a matrix
/// (x = column, y = row).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Region {
    /// Inclusive start column.
    pub x0: i64,
    /// Exclusive end column.
    pub x1: i64,
    /// Inclusive start row.
    pub y0: i64,
    /// Exclusive end row.
    pub y1: i64,
}

impl Region {
    /// Construct (empty regions are normalized to zero-size at origin).
    pub fn new(x0: i64, x1: i64, y0: i64, y1: i64) -> Self {
        if x1 <= x0 || y1 <= y0 {
            Region {
                x0: 0,
                x1: 0,
                y0: 0,
                y1: 0,
            }
        } else {
            Region { x0, x1, y0, y1 }
        }
    }

    /// The whole `w × h` matrix.
    pub fn full(w: usize, h: usize) -> Self {
        Region::new(0, w as i64, 0, h as i64)
    }

    /// Number of cells.
    pub fn area(&self) -> i64 {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// Whether the region holds no cells.
    pub fn is_empty(&self) -> bool {
        self.area() == 0
    }

    /// Intersection (possibly empty).
    pub fn intersect(&self, other: &Region) -> Region {
        Region::new(
            self.x0.max(other.x0),
            self.x1.min(other.x1),
            self.y0.max(other.y0),
            self.y1.min(other.y1),
        )
    }

    /// Whether `(x, y)` lies inside.
    pub fn contains(&self, x: i64, y: i64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Translate by `(dx, dy)`.
    pub fn shifted(&self, dx: i64, dy: i64) -> Region {
        if self.is_empty() {
            *self
        } else {
            Region {
                x0: self.x0 + dx,
                x1: self.x1 + dx,
                y0: self.y0 + dy,
                y1: self.y1 + dy,
            }
        }
    }

    /// Whether two regions share any cell.
    pub fn overlaps(&self, other: &Region) -> bool {
        !self.intersect(other).is_empty()
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{})x[{},{})", self.x0, self.x1, self.y0, self.y1)
    }
}

/// A data dependency of a rule: computing output cell `(x, y)` reads
/// `(x + dx, y + dy)` of the *output* matrix (self-dependencies drive
/// the schedule; pure-input reads need no edges).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DepOffset {
    /// Column offset between rule centers.
    pub dx: i64,
    /// Row offset between rule centers.
    pub dy: i64,
}

/// One rule of a transform: a name, where it can legally be applied, and
/// which output offsets it reads.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Rule name (used in diagnostics and schedules).
    pub name: String,
    /// Region of output cells this rule can compute.
    pub applicable: Region,
    /// Output-relative read offsets (self-dependencies).
    pub reads: Vec<DepOffset>,
}

impl Rule {
    /// Construct a rule.
    pub fn new(name: &str, applicable: Region, reads: &[(i64, i64)]) -> Self {
        Rule {
            name: name.to_string(),
            applicable,
            reads: reads.iter().map(|&(dx, dy)| DepOffset { dx, dy }).collect(),
        }
    }
}

/// A transform: an output shape plus its rules.
#[derive(Clone, Debug)]
pub struct Transform {
    /// Transform name.
    pub name: String,
    /// Output width (columns).
    pub width: usize,
    /// Output height (rows).
    pub height: usize,
    /// The rules (choices).
    pub rules: Vec<Rule>,
}

/// Errors from the analysis.
#[derive(Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// Some output cells are computable by no rule.
    UncoveredCells {
        /// An example uncovered cell.
        example: (i64, i64),
    },
    /// The dependency graph has a cycle not resolvable by wavefronting
    /// (a cell region transitively depends on itself with zero offset).
    CyclicDependency {
        /// Cells participating in the cycle.
        cells: Vec<usize>,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UncoveredCells { example } => {
                write!(f, "no rule covers output cell {example:?}")
            }
            AnalysisError::CyclicDependency { cells } => {
                write!(f, "cyclic choice dependency among cells {cells:?}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// One cell of the choice grid: a rectilinear region with a uniform set
/// of applicable rules.
#[derive(Clone, Debug)]
pub struct ChoiceCell {
    /// The region of output this cell covers.
    pub region: Region,
    /// Indices into `Transform::rules` of the applicable rules.
    pub rules: Vec<usize>,
}

/// The choice grid: a rectilinear partition of the output where each
/// part has a uniform applicable-rule set.
#[derive(Clone, Debug)]
pub struct ChoiceGrid {
    /// The cells (row-major over the breakpoint grid, empty sets
    /// filtered out by validation).
    pub cells: Vec<ChoiceCell>,
}

/// An edge of the choice dependency graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Cell doing the reading.
    pub from: usize,
    /// Cell being read.
    pub to: usize,
    /// Which rules (of the `from` cell) require this edge.
    pub choices: Vec<usize>,
    /// The offsets involved.
    pub offsets: Vec<DepOffset>,
}

/// The choice dependency graph over choice-grid cells.
#[derive(Clone, Debug)]
pub struct ChoiceDepGraph {
    /// The underlying grid.
    pub grid: ChoiceGrid,
    /// Dependency edges (from reads to).
    pub edges: Vec<DepEdge>,
}

/// A schedule: waves of cells; all cells within a wave may execute in
/// parallel, waves run in order. Cells whose dependencies point inside
/// themselves (e.g. left-to-right scans) are marked sequential.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Waves of (cell index, intra-cell order) pairs.
    pub waves: Vec<Vec<ScheduledCell>>,
}

/// A cell with its required intra-cell traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledCell {
    /// Index into the choice grid.
    pub cell: usize,
    /// How cells inside the region must be traversed.
    pub order: CellOrder,
}

/// Intra-cell traversal constraints derived from self-dependencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellOrder {
    /// No intra-cell dependency: any order (parallel rows allowed).
    Any,
    /// Must sweep with increasing x (reads dx < 0).
    IncreasingX,
    /// Must sweep with increasing y (reads dy < 0).
    IncreasingY,
    /// Must sweep x and y increasing (reads up-left).
    IncreasingXY,
}

impl Transform {
    /// Compute the choice grid: split the output at every applicable-
    /// region boundary and collect the rule set of each part.
    pub fn choice_grid(&self) -> ChoiceGrid {
        let full = Region::full(self.width, self.height);
        let mut xs: BTreeSet<i64> = BTreeSet::from([full.x0, full.x1]);
        let mut ys: BTreeSet<i64> = BTreeSet::from([full.y0, full.y1]);
        for r in &self.rules {
            let a = r.applicable.intersect(&full);
            if a.is_empty() {
                continue;
            }
            xs.insert(a.x0);
            xs.insert(a.x1);
            ys.insert(a.y0);
            ys.insert(a.y1);
        }
        let xs: Vec<i64> = xs.into_iter().collect();
        let ys: Vec<i64> = ys.into_iter().collect();
        let mut cells = Vec::new();
        for wy in ys.windows(2) {
            for wx in xs.windows(2) {
                let region = Region::new(wx[0], wx[1], wy[0], wy[1]);
                if region.is_empty() {
                    continue;
                }
                let rules: Vec<usize> = self
                    .rules
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| {
                        // Uniform applicability over the cell: cells are
                        // built from breakpoints, so containment of any
                        // interior point decides for the whole cell.
                        r.applicable.contains(region.x0, region.y0)
                    })
                    .map(|(i, _)| i)
                    .collect();
                cells.push(ChoiceCell { region, rules });
            }
        }
        ChoiceGrid { cells }
    }

    /// Build and validate the choice dependency graph.
    pub fn analyze(&self) -> Result<ChoiceDepGraph, AnalysisError> {
        let grid = self.choice_grid();
        // Coverage: every cell needs at least one rule.
        for cell in &grid.cells {
            if cell.rules.is_empty() {
                return Err(AnalysisError::UncoveredCells {
                    example: (cell.region.x0, cell.region.y0),
                });
            }
        }
        // Edges: cell A -> cell B if any applicable rule of A, shifted by
        // one of its read offsets, overlaps B.
        let mut edges: Vec<DepEdge> = Vec::new();
        for (a, cell_a) in grid.cells.iter().enumerate() {
            for (b, cell_b) in grid.cells.iter().enumerate() {
                let mut choices = Vec::new();
                let mut offsets = Vec::new();
                for &ri in &cell_a.rules {
                    for off in &self.rules[ri].reads {
                        let read = cell_a.region.shifted(off.dx, off.dy);
                        if read.overlaps(&cell_b.region) && !(a == b && off.dx == 0 && off.dy == 0)
                        {
                            if !choices.contains(&ri) {
                                choices.push(ri);
                            }
                            if !offsets.contains(off) {
                                offsets.push(*off);
                            }
                        }
                    }
                }
                if !choices.is_empty() {
                    edges.push(DepEdge {
                        from: a,
                        to: b,
                        choices,
                        offsets,
                    });
                }
            }
        }
        Ok(ChoiceDepGraph { grid, edges })
    }
}

impl ChoiceDepGraph {
    /// Intra-cell order required by a cell's self-edges.
    fn self_order(&self, cell: usize) -> Result<CellOrder, AnalysisError> {
        let mut needs_x = false;
        let mut needs_y = false;
        for e in self.edges.iter().filter(|e| e.from == cell && e.to == cell) {
            for off in &e.offsets {
                if off.dx > 0 || off.dy > 0 {
                    // Reading ahead of the sweep in both orientations:
                    // only legal combined with a matching negative
                    // offset is wavefronting, which we conservatively
                    // reject as a cycle.
                    return Err(AnalysisError::CyclicDependency { cells: vec![cell] });
                }
                if off.dx < 0 {
                    needs_x = true;
                }
                if off.dy < 0 {
                    needs_y = true;
                }
            }
        }
        Ok(match (needs_x, needs_y) {
            (false, false) => CellOrder::Any,
            (true, false) => CellOrder::IncreasingX,
            (false, true) => CellOrder::IncreasingY,
            (true, true) => CellOrder::IncreasingXY,
        })
    }

    /// Derive the wave schedule: Kahn's algorithm over inter-cell edges
    /// (reversed: dependencies first), with intra-cell orders attached.
    pub fn schedule(&self) -> Result<Schedule, AnalysisError> {
        let n = self.grid.cells.len();
        // in-degree of a cell = number of distinct cells it reads.
        let mut reads: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut readers: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for e in &self.edges {
            if e.from != e.to {
                reads[e.from].insert(e.to);
                readers[e.to].insert(e.from);
            }
        }
        let mut remaining: Vec<usize> = (0..n).map(|i| reads[i].len()).collect();
        let mut done = vec![false; n];
        let mut waves = Vec::new();
        let mut completed = 0usize;
        while completed < n {
            let ready: Vec<usize> = (0..n).filter(|&i| !done[i] && remaining[i] == 0).collect();
            if ready.is_empty() {
                let stuck: Vec<usize> = (0..n).filter(|&i| !done[i]).collect();
                return Err(AnalysisError::CyclicDependency { cells: stuck });
            }
            let mut wave = Vec::new();
            for &c in &ready {
                wave.push(ScheduledCell {
                    cell: c,
                    order: self.self_order(c)?,
                });
                done[c] = true;
                completed += 1;
            }
            for &c in &ready {
                for &r in &readers[c] {
                    remaining[r] = remaining[r].saturating_sub(1);
                }
            }
            waves.push(wave);
        }
        Ok(Schedule { waves })
    }
}

/// Execute a schedule over a row-major `f64` matrix: for each cell, the
/// chooser picks a rule index (from the cell's applicable set) and
/// `body(rule, x, y, data)` computes one output value. Cells within a
/// wave run in parallel on `pool` when their order allows.
pub fn execute_schedule<C, B>(
    transform: &Transform,
    graph: &ChoiceDepGraph,
    schedule: &Schedule,
    data: &mut [f64],
    pool: &Arc<ThreadPool>,
    chooser: C,
    body: B,
) where
    C: Fn(&ChoiceCell) -> usize + Sync,
    B: Fn(usize, i64, i64, &mut [f64]) + Sync,
{
    let w = transform.width;
    assert_eq!(data.len(), w * transform.height, "matrix shape mismatch");
    struct DataPtr(*mut f64);
    // SAFETY: waves touch disjoint regions (cells partition the output
    // and only same-wave cells run concurrently; same-wave cells are
    // mutually independent by construction of the schedule).
    unsafe impl Sync for DataPtr {}
    let ptr = DataPtr(data.as_mut_ptr());
    let len = data.len();

    for wave in &schedule.waves {
        pool.install(|| {
            petamg_runtime::scope(|s| {
                for sc in wave {
                    let cell = &graph.grid.cells[sc.cell];
                    let rule = chooser(cell);
                    assert!(
                        cell.rules.contains(&rule),
                        "chooser picked inapplicable rule {rule} for cell {}",
                        cell.region
                    );
                    let ptr = &ptr;
                    let body = &body;
                    let order = sc.order;
                    let region = cell.region;
                    s.spawn(move |_| {
                        // SAFETY: see DataPtr note; slice reconstruction
                        // is confined to this wave's disjoint writes.
                        let slice = unsafe { std::slice::from_raw_parts_mut(ptr.0, len) };
                        match order {
                            CellOrder::Any
                            | CellOrder::IncreasingX
                            | CellOrder::IncreasingY
                            | CellOrder::IncreasingXY => {
                                // Row-major increasing traversal satisfies
                                // every representable order.
                                for y in region.y0..region.y1 {
                                    for x in region.x0..region.x1 {
                                        body(rule, x, y, slice);
                                    }
                                }
                            }
                        }
                    });
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_algebra() {
        let a = Region::new(0, 10, 0, 10);
        let b = Region::new(5, 15, 5, 15);
        assert_eq!(a.intersect(&b), Region::new(5, 10, 5, 10));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&Region::new(20, 30, 0, 10)));
        assert_eq!(a.area(), 100);
        assert!(Region::new(5, 5, 0, 10).is_empty());
        assert_eq!(a.shifted(2, -1), Region::new(2, 12, -1, 9));
        assert!(a.contains(0, 0));
        assert!(!a.contains(10, 0));
    }

    /// An elementwise map: one rule covering everything, no reads.
    fn map_transform() -> Transform {
        Transform {
            name: "map".into(),
            width: 8,
            height: 4,
            rules: vec![Rule::new("double", Region::full(8, 4), &[])],
        }
    }

    /// A 1D-style prefix scan over each row: interior rule reads the
    /// left neighbor; a separate base rule covers column 0.
    fn scan_transform() -> Transform {
        Transform {
            name: "scan".into(),
            width: 8,
            height: 3,
            rules: vec![
                Rule::new("base", Region::new(0, 1, 0, 3), &[]),
                Rule::new("step", Region::new(1, 8, 0, 3), &[(-1, 0)]),
            ],
        }
    }

    #[test]
    fn choice_grid_partitions_exactly() {
        let t = scan_transform();
        let grid = t.choice_grid();
        let total: i64 = grid.cells.iter().map(|c| c.region.area()).sum();
        assert_eq!(total, 8 * 3, "cells partition the output");
        // Two cells: column 0 (base) and columns 1.. (step).
        assert_eq!(grid.cells.len(), 2);
        let col0 = grid
            .cells
            .iter()
            .find(|c| c.region.x0 == 0 && c.region.x1 == 1)
            .unwrap();
        assert_eq!(col0.rules, vec![0]);
    }

    #[test]
    fn uncovered_cells_detected() {
        let t = Transform {
            name: "holey".into(),
            width: 4,
            height: 4,
            rules: vec![Rule::new("partial", Region::new(0, 2, 0, 4), &[])],
        };
        match t.analyze() {
            Err(AnalysisError::UncoveredCells { example }) => {
                assert_eq!(example, (2, 0));
            }
            other => panic!("expected coverage error, got {other:?}"),
        }
    }

    #[test]
    fn map_schedule_is_single_parallel_wave() {
        let t = map_transform();
        let graph = t.analyze().unwrap();
        assert!(graph.edges.is_empty());
        let sched = graph.schedule().unwrap();
        assert_eq!(sched.waves.len(), 1);
        assert!(sched.waves[0].iter().all(|sc| sc.order == CellOrder::Any));
    }

    #[test]
    fn scan_schedule_orders_base_before_step() {
        let t = scan_transform();
        let graph = t.analyze().unwrap();
        let sched = graph.schedule().unwrap();
        assert_eq!(sched.waves.len(), 2, "base wave then step wave");
        // The step cell needs an increasing-x sweep (self-dependency).
        let step_cell = sched.waves[1][0];
        assert_eq!(step_cell.order, CellOrder::IncreasingX);
    }

    #[test]
    fn forward_self_dependency_rejected() {
        let t = Transform {
            name: "future-read".into(),
            width: 4,
            height: 1,
            rules: vec![Rule::new("bad", Region::full(4, 1), &[(1, 0)])],
        };
        let graph = t.analyze().unwrap();
        assert!(matches!(
            graph.schedule(),
            Err(AnalysisError::CyclicDependency { .. })
        ));
    }

    #[test]
    fn cyclic_cells_rejected() {
        // Two cells reading each other.
        let t = Transform {
            name: "cycle".into(),
            width: 2,
            height: 1,
            rules: vec![
                Rule::new("left", Region::new(0, 1, 0, 1), &[(1, 0)]),
                Rule::new("right", Region::new(1, 2, 0, 1), &[(-1, 0)]),
            ],
        };
        let graph = t.analyze().unwrap();
        assert!(matches!(
            graph.schedule(),
            Err(AnalysisError::CyclicDependency { .. })
        ));
    }

    #[test]
    fn execute_scan_produces_prefix_sums() {
        let t = scan_transform();
        let graph = t.analyze().unwrap();
        let sched = graph.schedule().unwrap();
        let pool = Arc::new(ThreadPool::new(2));
        // Start with ones; base rule keeps value, step accumulates left.
        let mut data = vec![1.0f64; 8 * 3];
        execute_schedule(
            &t,
            &graph,
            &sched,
            &mut data,
            &pool,
            |cell| cell.rules[0],
            |rule, x, y, m| {
                let idx = (y as usize) * 8 + x as usize;
                if rule == 1 {
                    m[idx] += m[idx - 1];
                }
            },
        );
        for y in 0..3 {
            for x in 0..8 {
                assert_eq!(data[y * 8 + x], (x + 1) as f64, "({x},{y})");
            }
        }
    }

    #[test]
    fn execute_map_in_parallel() {
        let t = map_transform();
        let graph = t.analyze().unwrap();
        let sched = graph.schedule().unwrap();
        let pool = Arc::new(ThreadPool::new(2));
        let mut data: Vec<f64> = (0..32).map(|i| i as f64).collect();
        execute_schedule(
            &t,
            &graph,
            &sched,
            &mut data,
            &pool,
            |cell| cell.rules[0],
            |_, x, y, m| {
                let idx = (y as usize) * 8 + x as usize;
                m[idx] *= 2.0;
            },
        );
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i * 2) as f64);
        }
    }

    #[test]
    fn corner_case_rules_get_own_cells() {
        // The paper: "automatic detection and handling of corner cases".
        // A 5-point-stencil-like rule applies to the interior; border
        // rules cover the edges. The grid must carve the border into
        // separate cells with only the border rule applicable.
        let t = Transform {
            name: "stencil".into(),
            width: 6,
            height: 6,
            rules: vec![
                Rule::new("interior", Region::new(1, 5, 1, 5), &[]),
                Rule::new("border", Region::full(6, 6), &[]),
            ],
        };
        let grid = t.choice_grid();
        let interior = grid
            .cells
            .iter()
            .find(|c| c.region == Region::new(1, 5, 1, 5))
            .expect("interior cell exists");
        assert_eq!(interior.rules, vec![0, 1], "both rules in the interior");
        let corner = grid.cells.iter().find(|c| c.region.contains(0, 0)).unwrap();
        assert_eq!(corner.rules, vec![1], "only the border rule at corners");
        let total: i64 = grid.cells.iter().map(|c| c.region.area()).sum();
        assert_eq!(total, 36);
    }
}
