//! Flat configuration spaces.
//!
//! "All choices are represented in a flat configuration space.
//! Dependencies between these configurable parameters are exported to
//! the autotuner so that the autotuner can choose a sensible order to
//! tune different parameters." (§3.2.2)

use petamg_grid::SimdPolicy;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a parameter within its [`ConfigSpace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub usize);

/// How numeric parameters are traversed/mutated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Additive steps.
    Linear,
    /// Multiplicative steps (cutoffs, block sizes).
    Log,
}

/// The kind and domain of a parameter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// An algorithmic choice among named alternatives.
    Switch { choices: Vec<String> },
    /// An integer tunable in `[lo, hi]`.
    Int { lo: i64, hi: i64, scale: Scale },
    /// A float tunable in `[lo, hi]`.
    Float { lo: f64, hi: f64 },
}

/// A single parameter: name, domain, default.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Unique name within the space (used in config files).
    pub name: String,
    /// Domain.
    pub kind: ParamKind,
    /// Default value (must lie in the domain).
    pub default: ParamValue,
}

/// A concrete value for one parameter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ParamValue {
    /// Index into a switch's choices.
    Switch(usize),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
}

/// Errors raised by config validation and IO.
#[derive(Debug)]
pub enum ConfigError {
    /// Value does not match the parameter's kind or domain.
    Invalid { param: String, reason: String },
    /// A named parameter is missing / unknown.
    UnknownParam(String),
    /// Underlying serde/IO failure.
    Io(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Invalid { param, reason } => {
                write!(f, "invalid value for '{param}': {reason}")
            }
            ConfigError::UnknownParam(p) => write!(f, "unknown parameter '{p}'"),
            ConfigError::Io(e) => write!(f, "config io error: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A flat space of parameters plus tuning-order dependencies.
#[derive(Clone, Debug, Default)]
pub struct ConfigSpace {
    params: Vec<ParamSpec>,
    /// Edge `(a, b)`: parameter `a` depends on `b` (tune `b` first).
    deps: Vec<(usize, usize)>,
}

impl ConfigSpace {
    /// Empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The spec of `id`.
    pub fn spec(&self, id: ParamId) -> &ParamSpec {
        &self.params[id.0]
    }

    /// All specs in declaration order.
    pub fn specs(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Find a parameter by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.params.iter().position(|p| p.name == name).map(ParamId)
    }

    /// The `[lo, hi]` domain of an integer parameter, by name. `None`
    /// if the parameter is missing or not an integer.
    pub fn int_domain(&self, name: &str) -> Option<(i64, i64)> {
        match self.spec(self.find(name)?).kind {
            ParamKind::Int { lo, hi, .. } => Some((lo, hi)),
            _ => None,
        }
    }

    fn add(&mut self, spec: ParamSpec) -> ParamId {
        assert!(
            self.find(&spec.name).is_none(),
            "duplicate parameter name '{}'",
            spec.name
        );
        self.params.push(spec);
        ParamId(self.params.len() - 1)
    }

    /// Add an algorithmic switch; `default` is an index into `choices`.
    pub fn add_switch(&mut self, name: &str, choices: &[&str], default: usize) -> ParamId {
        assert!(default < choices.len(), "switch default out of range");
        self.add(ParamSpec {
            name: name.to_string(),
            kind: ParamKind::Switch {
                choices: choices.iter().map(|s| s.to_string()).collect(),
            },
            default: ParamValue::Switch(default),
        })
    }

    /// Add an integer tunable.
    pub fn add_int(&mut self, name: &str, lo: i64, hi: i64, default: i64, scale: Scale) -> ParamId {
        assert!(lo <= hi && (lo..=hi).contains(&default), "bad int domain");
        self.add(ParamSpec {
            name: name.to_string(),
            kind: ParamKind::Int { lo, hi, scale },
            default: ParamValue::Int(default),
        })
    }

    /// Add a float tunable.
    pub fn add_float(&mut self, name: &str, lo: f64, hi: f64, default: f64) -> ParamId {
        assert!(
            lo <= hi && default >= lo && default <= hi,
            "bad float domain"
        );
        self.add(ParamSpec {
            name: name.to_string(),
            kind: ParamKind::Float { lo, hi },
            default: ParamValue::Float(default),
        })
    }

    /// Declare that `param` depends on `on` (tune `on` earlier).
    pub fn add_dependency(&mut self, param: ParamId, on: ParamId) {
        assert!(param.0 < self.params.len() && on.0 < self.params.len());
        self.deps.push((param.0, on.0));
    }

    /// Dependency edges `(dependent, dependency)`.
    pub fn dependencies(&self) -> &[(usize, usize)] {
        &self.deps
    }

    /// The all-defaults configuration.
    pub fn default_config(&self) -> Config {
        Config {
            values: self.params.iter().map(|p| p.default).collect(),
        }
    }

    /// Validate a value against a parameter's domain.
    pub fn validate(&self, id: ParamId, value: ParamValue) -> Result<(), ConfigError> {
        let spec = &self.params[id.0];
        let bad = |reason: &str| {
            Err(ConfigError::Invalid {
                param: spec.name.clone(),
                reason: reason.to_string(),
            })
        };
        match (&spec.kind, value) {
            (ParamKind::Switch { choices }, ParamValue::Switch(i)) => {
                if i < choices.len() {
                    Ok(())
                } else {
                    bad("switch index out of range")
                }
            }
            (ParamKind::Int { lo, hi, .. }, ParamValue::Int(v)) => {
                if (*lo..=*hi).contains(&v) {
                    Ok(())
                } else {
                    bad("integer out of range")
                }
            }
            (ParamKind::Float { lo, hi }, ParamValue::Float(v)) => {
                if v >= *lo && v <= *hi && v.is_finite() {
                    Ok(())
                } else {
                    bad("float out of range")
                }
            }
            _ => bad("kind mismatch"),
        }
    }
}

/// A concrete assignment of every parameter in a space.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    values: Vec<ParamValue>,
}

impl Config {
    /// Raw values (index-aligned with the space).
    pub fn values(&self) -> &[ParamValue] {
        &self.values
    }

    /// Read a switch value.
    ///
    /// # Panics
    /// Panics if the parameter is not a switch.
    pub fn switch(&self, id: ParamId) -> usize {
        match self.values[id.0] {
            ParamValue::Switch(i) => i,
            other => panic!("parameter {id:?} is not a switch (got {other:?})"),
        }
    }

    /// Read an integer value.
    ///
    /// # Panics
    /// Panics if the parameter is not an int.
    pub fn int(&self, id: ParamId) -> i64 {
        match self.values[id.0] {
            ParamValue::Int(v) => v,
            other => panic!("parameter {id:?} is not an int (got {other:?})"),
        }
    }

    /// Read a float value.
    ///
    /// # Panics
    /// Panics if the parameter is not a float.
    pub fn float(&self, id: ParamId) -> f64 {
        match self.values[id.0] {
            ParamValue::Float(v) => v,
            other => panic!("parameter {id:?} is not a float (got {other:?})"),
        }
    }

    /// Set a value after validating against `space`.
    pub fn set(
        &mut self,
        space: &ConfigSpace,
        id: ParamId,
        value: ParamValue,
    ) -> Result<(), ConfigError> {
        space.validate(id, value)?;
        self.values[id.0] = value;
        Ok(())
    }

    /// Serialize to the PetaBricks-style name→value JSON object.
    pub fn to_json(&self, space: &ConfigSpace) -> String {
        let map: BTreeMap<&str, ParamValue> = space
            .specs()
            .iter()
            .zip(&self.values)
            .map(|(s, v)| (s.name.as_str(), *v))
            .collect();
        serde_json::to_string_pretty(&map).expect("config serialization cannot fail")
    }

    /// Parse from JSON, validating every entry against `space`. Missing
    /// parameters take their defaults; unknown names are errors.
    pub fn from_json(space: &ConfigSpace, json: &str) -> Result<Config, ConfigError> {
        let map: BTreeMap<String, serde_json::Value> =
            serde_json::from_str(json).map_err(|e| ConfigError::Io(e.to_string()))?;
        let mut cfg = space.default_config();
        for (name, raw) in map {
            let id = space
                .find(&name)
                .ok_or_else(|| ConfigError::UnknownParam(name.clone()))?;
            let value = match (&space.spec(id).kind, &raw) {
                (ParamKind::Switch { .. }, serde_json::Value::Number(n)) => {
                    ParamValue::Switch(n.as_u64().ok_or_else(|| ConfigError::Invalid {
                        param: name.clone(),
                        reason: "expected unsigned index".into(),
                    })? as usize)
                }
                (ParamKind::Int { .. }, serde_json::Value::Number(n)) => {
                    ParamValue::Int(n.as_i64().ok_or_else(|| ConfigError::Invalid {
                        param: name.clone(),
                        reason: "expected integer".into(),
                    })?)
                }
                (ParamKind::Float { .. }, serde_json::Value::Number(n)) => {
                    ParamValue::Float(n.as_f64().ok_or_else(|| ConfigError::Invalid {
                        param: name.clone(),
                        reason: "expected float".into(),
                    })?)
                }
                _ => {
                    return Err(ConfigError::Invalid {
                        param: name.clone(),
                        reason: "expected a number".into(),
                    })
                }
            };
            cfg.set(space, id, value)?;
        }
        Ok(cfg)
    }

    /// Write to a file (JSON).
    pub fn save(&self, space: &ConfigSpace, path: &std::path::Path) -> Result<(), ConfigError> {
        std::fs::write(path, self.to_json(space)).map_err(|e| ConfigError::Io(e.to_string()))
    }

    /// Load from a file (JSON).
    pub fn load(space: &ConfigSpace, path: &std::path::Path) -> Result<Config, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(|e| ConfigError::Io(e.to_string()))?;
        Config::from_json(space, &text)
    }
}

/// Name of the band-height axis in [`kernel_exec_space`].
pub const PARAM_BAND_ROWS: &str = "band_rows";
/// Name of the temporal-block-depth axis in [`kernel_exec_space`].
pub const PARAM_TBLOCK: &str = "tblock";
/// Name of the vectorization axis in [`kernel_exec_space`].
pub const PARAM_SIMD: &str = "simd";

/// Typed view of a [`kernel_exec_space`] configuration.
///
/// All three knobs are pure performance axes: the grid kernels
/// guarantee bitwise identical results for every setting (including
/// scalar vs vector — see `petamg_grid::simd`), so the tuner can
/// search them freely without re-validating accuracy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelKnobs {
    /// Rows per block-cursor band (`Exec::with_band` in `petamg-grid`).
    pub band_rows: usize,
    /// SOR sweeps fused per wavefront traversal
    /// (`petamg_solvers::fused`).
    pub tblock: usize,
    /// Scalar-vs-vector row-kernel path (`Exec::with_simd`). Added in
    /// knob-table schema version 2; version-1 tables upgrade to
    /// `Auto` on load.
    pub simd: SimdPolicy,
}

impl KernelKnobs {
    /// Extract the knobs from a configuration of [`kernel_exec_space`]
    /// (or any space containing the three named axes).
    ///
    /// # Panics
    /// Panics if any axis is missing from `space`.
    pub fn from_config(space: &ConfigSpace, config: &Config) -> Self {
        let band = space
            .find(PARAM_BAND_ROWS)
            .expect("space lacks the band_rows axis");
        let tblock = space
            .find(PARAM_TBLOCK)
            .expect("space lacks the tblock axis");
        let simd = space.find(PARAM_SIMD).expect("space lacks the simd axis");
        KernelKnobs {
            band_rows: config.int(band).max(1) as usize,
            tblock: config.int(tblock).max(1) as usize,
            simd: SimdPolicy::from_index(config.switch(simd)),
        }
    }
}

impl Default for KernelKnobs {
    fn default() -> Self {
        KernelKnobs {
            band_rows: 32,
            tblock: 1,
            simd: SimdPolicy::Auto,
        }
    }
}

/// Current schema version of serialized [`KnobTable`]s.
///
/// * **Version 2** (current) added the per-level `simd` policy to
///   every entry.
/// * **Version 1** tables (band + tblock only) upgrade on load via
///   [`KnobTable::upgrade_value`]: each entry gains `simd: Auto`.
/// * Plan files written before knob tables existed carry no table at
///   all and upgrade to a uniform table of the global defaults.
pub const KNOB_TABLE_VERSION: u32 = 2;

/// A per-level table of tuned [`KernelKnobs`]: entry `k` holds the
/// knobs for multigrid level `k` (grid `2^k + 1`). Index 0 is unused
/// padding, mirroring the DP tuner's `plans` table.
///
/// The paper's central mechanism is a *per level and per problem size*
/// choice; this table extends that from algorithms to the
/// kernel-execution knobs, so a tuned plan can run coarse levels with
/// short bands (cache-resident rows) and fine levels with tall bands
/// and deeper temporal blocking. Every entry is a pure performance
/// setting — execution is bitwise identical for any table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnobTable {
    /// Serialized-schema version (see [`KNOB_TABLE_VERSION`]).
    pub version: u32,
    /// `per_level[k]` = knobs for level `k`; `per_level[0]` is padding.
    pub per_level: Vec<KernelKnobs>,
}

impl KnobTable {
    /// A table holding `knobs` at every level `0..=max_level`.
    pub fn uniform(max_level: usize, knobs: KernelKnobs) -> Self {
        KnobTable {
            version: KNOB_TABLE_VERSION,
            per_level: vec![knobs; max_level + 1],
        }
    }

    /// The all-defaults table (the pre-table global behaviour).
    pub fn defaults(max_level: usize) -> Self {
        Self::uniform(max_level, KernelKnobs::default())
    }

    /// Largest level the table covers.
    pub fn max_level(&self) -> usize {
        self.per_level.len().saturating_sub(1)
    }

    /// The knobs for `level`, clamping out-of-range levels to the
    /// finest tabulated entry (or the defaults for an empty table), so
    /// executors never panic on plans deeper than the table.
    pub fn get(&self, level: usize) -> KernelKnobs {
        match self.per_level.get(level) {
            Some(k) => *k,
            None => self.per_level.last().copied().unwrap_or_default(),
        }
    }

    /// Set the knobs for `level`, growing the table with defaults if
    /// needed.
    pub fn set(&mut self, level: usize, knobs: KernelKnobs) {
        if level >= self.per_level.len() {
            self.per_level.resize(level + 1, KernelKnobs::default());
        }
        self.per_level[level] = knobs;
    }

    /// Whether every entry equals every other (the table degenerates to
    /// a single global setting).
    pub fn is_uniform(&self) -> bool {
        self.per_level.windows(2).all(|w| w[0] == w[1])
    }

    /// Whether every entry is the global default — i.e. the table
    /// carries no tuning at all. Executors use this to avoid overriding
    /// a caller's hand-configured policy with an untuned table.
    pub fn is_all_default(&self) -> bool {
        self.per_level.iter().all(|k| *k == KernelKnobs::default())
    }

    /// Upgrade a serialized knob-table JSON value **in place** to the
    /// current schema: version-1 tables (entries without a `simd`
    /// field) gain `simd: "Auto"` per entry and move to version 2.
    /// Current-version values pass through untouched. Returns an error
    /// for structurally alien values (the caller surfaces it as a
    /// parse failure).
    pub fn upgrade_value(value: &mut serde_json::Value) -> Result<(), String> {
        let serde_json::Value::Object(obj) = value else {
            return Err("expected a JSON object for a knob table".into());
        };
        let version = obj
            .get("version")
            .and_then(|v| match v {
                serde_json::Value::Number(n) => n.as_u64(),
                _ => None,
            })
            .ok_or("knob table lacks a numeric version")?;
        if version != 1 {
            return Ok(()); // current (or future — validate rejects later)
        }
        if let Some(serde_json::Value::Array(entries)) = obj.get_mut("per_level") {
            for entry in entries.iter_mut() {
                if let serde_json::Value::Object(e) = entry {
                    e.entry("simd".to_string())
                        .or_insert_with(|| serde_json::Value::String("Auto".into()));
                }
            }
        }
        obj.insert(
            "version".to_string(),
            serde_json::Value::Number(serde_json::Number::from_u64(2)),
        );
        Ok(())
    }

    /// Structural validation: known version, non-empty, and every entry
    /// inside the [`kernel_exec_space`] domains (read from the space
    /// itself, so widening an axis there widens what tables accept).
    pub fn validate(&self) -> Result<(), String> {
        if self.version == 0 || self.version > KNOB_TABLE_VERSION {
            return Err(format!(
                "unsupported knob-table version {} (max {KNOB_TABLE_VERSION})",
                self.version
            ));
        }
        if self.per_level.is_empty() {
            return Err("knob table has no levels".into());
        }
        let space = kernel_exec_space();
        let (band_lo, band_hi) = space.int_domain(PARAM_BAND_ROWS).expect("band axis");
        let (tblock_lo, tblock_hi) = space.int_domain(PARAM_TBLOCK).expect("tblock axis");
        for (k, knobs) in self.per_level.iter().enumerate() {
            let band_ok = (band_lo..=band_hi).contains(&(knobs.band_rows as i64));
            let tblock_ok = (tblock_lo..=tblock_hi).contains(&(knobs.tblock as i64));
            if !band_ok || !tblock_ok {
                return Err(format!(
                    "level {k}: knobs {knobs:?} outside the kernel_exec_space domain"
                ));
            }
        }
        Ok(())
    }
}

/// The kernel-execution tuning space: the block-cursor **band height**
/// and the **temporal-block depth** of the fused multigrid kernels —
/// "block sizes" in PetaBricks terms (§3.2.2), which the Kernel Tuning
/// Toolkit and empirical QR autotuning literature likewise treat as
/// first-class tuning dimensions.
///
/// `tblock` depends on `band_rows` (the band must be chosen before the
/// temporal depth can be judged: deeper blocking enlarges each band's
/// recomputed halo), so [`tuning_order`] yields `band_rows` first.
pub fn kernel_exec_space() -> ConfigSpace {
    let mut s = ConfigSpace::new();
    let band = s.add_int(PARAM_BAND_ROWS, 1, 512, 32, Scale::Log);
    let tblock = s.add_int(PARAM_TBLOCK, 1, 8, 1, Scale::Log);
    s.add_dependency(tblock, band);
    // The vectorization axis: auto / scalar / forced-vector, labels
    // index-aligned with `SimdPolicy::ALL`. Band and tblock depend on
    // it (a vectorized kernel moves more data per row, shifting the
    // band/tblock sweet spots), so it is tuned first.
    let simd = s.add_switch(PARAM_SIMD, &["auto", "scalar", "vector"], 0);
    s.add_dependency(band, simd);
    s
}

/// Name of the operator-family axis in [`problem_space`].
pub const PARAM_PROBLEM: &str = "problem";

/// Labels of the canonical operator profiles, index-aligned with the
/// `problem` switch axis of [`problem_space`] and with the named
/// `Problem` constructors in `petamg-problems` (`poisson`,
/// `smooth_sinusoidal`, `jump_inclusion`, `anisotropic_canonical`).
pub const PROBLEM_FAMILY_LABELS: [&str; 4] = ["poisson", "smooth", "jump1000", "aniso0.01"];

/// The **operator axis** of the search space: which PDE is posed.
///
/// Unlike the kernel-execution knobs this is not a free tuning variable
/// — the *user* poses the problem — but it is a first-class dimension
/// of the plan library: tuned plans are stored and looked up per
/// `(problem, machine, accuracy)`, and benches sweep this axis to
/// demonstrate per-problem plan divergence (the `problem_sweep` section
/// of `BENCH_kernels.json`). Every kernel knob depends on it: changing
/// the operator changes the per-row flop/byte mix, so band, tblock, and
/// simd sweet spots must be re-searched per problem, exactly as the
/// per-workload re-tuning literature (KTT, sustainable autotuning)
/// prescribes.
pub fn problem_space() -> ConfigSpace {
    // Built *on* kernel_exec_space so the knob axes (names, domains,
    // defaults, and the band→simd / tblock→band dependencies) can never
    // drift from the per-level knob tuner's space; this only adds the
    // operator switch and makes the knobs depend on it.
    let mut s = kernel_exec_space();
    let problem = s.add_switch(PARAM_PROBLEM, &PROBLEM_FAMILY_LABELS, 0);
    let band = s.find(PARAM_BAND_ROWS).expect("kernel space has band");
    let simd = s.find(PARAM_SIMD).expect("kernel space has simd");
    s.add_dependency(simd, problem);
    s.add_dependency(band, problem);
    s
}

/// Compute the tuning order: strongly-connected components of the
/// dependency graph in topological order (dependencies first). Parameters
/// in the same component are tuned together — "if there are cycles in
/// the dependency graph, it tunes all parameters in the cycle in
/// parallel" (§3.2.2). Parameters with no edges come last, each alone.
pub fn tuning_order(space: &ConfigSpace) -> Vec<Vec<ParamId>> {
    let n = space.len();
    // Tarjan SCC on edges dependent -> dependency.
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in space.dependencies() {
        adj[a].push(b);
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut counter = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan to avoid recursion depth issues.
    #[derive(Clone)]
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call = vec![Frame::Enter(start)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut ei) => {
                    let mut descended = false;
                    while ei < adj[v].len() {
                        let w = adj[v][ei];
                        ei += 1;
                        if index[w] == usize::MAX {
                            call.push(Frame::Resume(v, ei));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All children done: fold lowlinks of completed kids.
                    for &w in &adj[v] {
                        if on_stack[w] {
                            low[v] = low[v].min(low[w]);
                        }
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        comps.push(comp);
                    }
                }
            }
        }
    }
    // Tarjan emits components in reverse topological order of the
    // condensation w.r.t. edges dependent -> dependency, i.e.
    // dependencies (sinks) come FIRST — exactly the tuning order.
    comps
        .into_iter()
        .map(|c| c.into_iter().map(ParamId).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add_switch("algo", &["direct", "iterative", "recursive"], 0);
        s.add_int("cutoff", 1, 1024, 64, Scale::Log);
        s.add_float("omega", 0.5, 1.95, 1.15);
        s
    }

    #[test]
    fn default_config_matches_specs() {
        let s = sample_space();
        let c = s.default_config();
        assert_eq!(c.switch(s.find("algo").unwrap()), 0);
        assert_eq!(c.int(s.find("cutoff").unwrap()), 64);
        assert!((c.float(s.find("omega").unwrap()) - 1.15).abs() < 1e-15);
    }

    #[test]
    fn validation_rejects_out_of_domain() {
        let s = sample_space();
        let mut c = s.default_config();
        let algo = s.find("algo").unwrap();
        assert!(c.set(&s, algo, ParamValue::Switch(5)).is_err());
        assert!(c.set(&s, algo, ParamValue::Int(1)).is_err()); // kind mismatch
        let cutoff = s.find("cutoff").unwrap();
        assert!(c.set(&s, cutoff, ParamValue::Int(4096)).is_err());
        assert!(c.set(&s, cutoff, ParamValue::Int(512)).is_ok());
        let omega = s.find("omega").unwrap();
        assert!(c.set(&s, omega, ParamValue::Float(f64::NAN)).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_rejected() {
        let mut s = ConfigSpace::new();
        s.add_int("x", 0, 1, 0, Scale::Linear);
        s.add_int("x", 0, 1, 0, Scale::Linear);
    }

    #[test]
    fn json_roundtrip() {
        let s = sample_space();
        let mut c = s.default_config();
        c.set(&s, s.find("algo").unwrap(), ParamValue::Switch(2))
            .unwrap();
        c.set(&s, s.find("cutoff").unwrap(), ParamValue::Int(128))
            .unwrap();
        let json = c.to_json(&s);
        let c2 = Config::from_json(&s, &json).unwrap();
        assert_eq!(c2.switch(s.find("algo").unwrap()), 2);
        assert_eq!(c2.int(s.find("cutoff").unwrap()), 128);
    }

    #[test]
    fn json_unknown_param_rejected() {
        let s = sample_space();
        assert!(matches!(
            Config::from_json(&s, r#"{"bogus": 1}"#),
            Err(ConfigError::UnknownParam(_))
        ));
    }

    #[test]
    fn json_missing_params_default() {
        let s = sample_space();
        let c = Config::from_json(&s, r#"{"cutoff": 32}"#).unwrap();
        assert_eq!(c.int(s.find("cutoff").unwrap()), 32);
        assert_eq!(c.switch(s.find("algo").unwrap()), 0);
    }

    #[test]
    fn file_roundtrip() {
        let s = sample_space();
        let c = s.default_config();
        let dir = std::env::temp_dir().join("petamg-choice-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cfg.json");
        c.save(&s, &path).unwrap();
        let c2 = Config::load(&s, &path).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn problem_space_orders_operator_axis_first() {
        // The operator axis is the outermost dimension: every kernel
        // knob depends on it, so the tuning order resolves the posed
        // problem before any knob is searched.
        let s = problem_space();
        let order = tuning_order(&s);
        let problem = s.find(PARAM_PROBLEM).unwrap();
        assert_eq!(order[0], vec![problem], "problem axis tunes first");
        let spec = s.spec(problem);
        match &spec.kind {
            ParamKind::Switch { choices } => {
                assert_eq!(choices.len(), PROBLEM_FAMILY_LABELS.len());
                assert!(choices.iter().any(|c| c == "jump1000"));
            }
            other => panic!("problem axis must be a switch, got {other:?}"),
        }
        // The knob axes are all present and downstream of the operator.
        for name in [PARAM_SIMD, PARAM_BAND_ROWS, PARAM_TBLOCK] {
            let id = s.find(name).unwrap();
            let pos = order.iter().position(|g| g.contains(&id)).unwrap();
            assert!(pos > 0, "{name} must tune after the problem axis");
        }
    }

    #[test]
    fn tuning_order_leaves_first() {
        let mut s = ConfigSpace::new();
        let a = s.add_int("a", 0, 9, 0, Scale::Linear);
        let b = s.add_int("b", 0, 9, 0, Scale::Linear);
        let c = s.add_int("c", 0, 9, 0, Scale::Linear);
        // a depends on b; b depends on c => order: [c], [b], [a]
        s.add_dependency(a, b);
        s.add_dependency(b, c);
        let order = tuning_order(&s);
        assert_eq!(order, vec![vec![c], vec![b], vec![a]]);
    }

    #[test]
    fn tuning_order_groups_cycles() {
        let mut s = ConfigSpace::new();
        let a = s.add_int("a", 0, 9, 0, Scale::Linear);
        let b = s.add_int("b", 0, 9, 0, Scale::Linear);
        let c = s.add_int("c", 0, 9, 0, Scale::Linear);
        // a <-> b cycle; both depend on c.
        s.add_dependency(a, b);
        s.add_dependency(b, a);
        s.add_dependency(a, c);
        let order = tuning_order(&s);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], vec![c]);
        assert_eq!(order[1], vec![a, b]);
    }

    #[test]
    fn kernel_exec_space_axes_and_order() {
        let s = kernel_exec_space();
        let knobs = KernelKnobs::from_config(&s, &s.default_config());
        assert_eq!(knobs, KernelKnobs::default());
        // band_rows is tuned before tblock (tblock depends on it).
        let order = tuning_order(&s);
        let band = s.find(PARAM_BAND_ROWS).unwrap();
        let tblock = s.find(PARAM_TBLOCK).unwrap();
        let pos = |p: ParamId| order.iter().position(|g| g.contains(&p)).unwrap();
        assert!(pos(band) < pos(tblock), "band must be tuned first");
        // Both axes are Log-scaled ints with sane domains.
        for name in [PARAM_BAND_ROWS, PARAM_TBLOCK] {
            let id = s.find(name).unwrap();
            match &s.spec(id).kind {
                ParamKind::Int { lo, scale, .. } => {
                    assert_eq!(*lo, 1, "{name} must allow the degenerate baseline");
                    assert_eq!(*scale, Scale::Log);
                }
                other => panic!("{name} has wrong kind {other:?}"),
            }
        }
    }

    #[test]
    fn kernel_knobs_roundtrip_through_json() {
        let s = kernel_exec_space();
        let mut c = s.default_config();
        c.set(&s, s.find(PARAM_BAND_ROWS).unwrap(), ParamValue::Int(64))
            .unwrap();
        c.set(&s, s.find(PARAM_TBLOCK).unwrap(), ParamValue::Int(4))
            .unwrap();
        c.set(&s, s.find(PARAM_SIMD).unwrap(), ParamValue::Switch(2))
            .unwrap();
        let c2 = Config::from_json(&s, &c.to_json(&s)).unwrap();
        let knobs = KernelKnobs::from_config(&s, &c2);
        assert_eq!(
            knobs,
            KernelKnobs {
                band_rows: 64,
                tblock: 4,
                simd: SimdPolicy::Vector,
            }
        );
    }

    #[test]
    fn knob_table_get_set_and_clamp() {
        let mut t = KnobTable::defaults(4);
        assert_eq!(t.max_level(), 4);
        assert!(t.is_uniform());
        let coarse = KernelKnobs {
            band_rows: 4,
            tblock: 2,
            simd: SimdPolicy::Auto,
        };
        t.set(2, coarse);
        assert!(!t.is_uniform());
        assert_eq!(t.get(2), coarse);
        assert_eq!(t.get(4), KernelKnobs::default());
        // Out-of-range levels clamp to the finest tabulated entry.
        t.set(4, coarse);
        assert_eq!(t.get(99), coarse);
        // set() grows the table as needed.
        t.set(6, KernelKnobs::default());
        assert_eq!(t.max_level(), 6);
        assert_eq!(t.get(5), KernelKnobs::default());
        t.validate().unwrap();
    }

    #[test]
    fn knob_table_default_detection() {
        let mut t = KnobTable::defaults(3);
        assert!(t.is_all_default(), "fresh table carries no tuning");
        t.set(
            2,
            KernelKnobs {
                band_rows: 8,
                tblock: 1,
                simd: SimdPolicy::Auto,
            },
        );
        assert!(!t.is_all_default());
        // Uniform but non-default: still real tuning.
        let u = KnobTable::uniform(
            3,
            KernelKnobs {
                band_rows: 64,
                tblock: 2,
                simd: SimdPolicy::Auto,
            },
        );
        assert!(u.is_uniform() && !u.is_all_default());
    }

    #[test]
    fn knob_table_validation_rejects_bad_entries() {
        let mut t = KnobTable::defaults(3);
        t.version = KNOB_TABLE_VERSION + 1;
        assert!(t.validate().is_err(), "future versions rejected");

        let mut t = KnobTable::defaults(3);
        t.per_level[1] = KernelKnobs {
            band_rows: 0,
            tblock: 1,
            simd: SimdPolicy::Auto,
        };
        assert!(t.validate().is_err(), "zero band rejected");

        let mut t = KnobTable::defaults(3);
        t.per_level[2] = KernelKnobs {
            band_rows: 1024,
            tblock: 1,
            simd: SimdPolicy::Auto,
        };
        assert!(t.validate().is_err(), "out-of-domain band rejected");

        let t = KnobTable {
            version: KNOB_TABLE_VERSION,
            per_level: Vec::new(),
        };
        assert!(t.validate().is_err(), "empty table rejected");
    }

    #[test]
    fn knob_table_serde_roundtrip() {
        let mut t = KnobTable::defaults(3);
        t.set(
            3,
            KernelKnobs {
                band_rows: 64,
                tblock: 4,
                simd: SimdPolicy::Auto,
            },
        );
        let json = serde_json::to_string_pretty(&t).unwrap();
        assert!(json.contains("\"version\""), "schema is versioned: {json}");
        let back: KnobTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn knob_table_v1_upgrades_to_current_schema() {
        // Build a v1-shaped value: serialize the current table, strip
        // the per-entry simd fields, and set version 1 — exactly what a
        // pre-SIMD build wrote.
        let mut t = KnobTable::defaults(3);
        t.set(
            2,
            KernelKnobs {
                band_rows: 8,
                tblock: 4,
                simd: SimdPolicy::Auto,
            },
        );
        let mut value: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        if let serde_json::Value::Object(obj) = &mut value {
            obj.insert(
                "version".into(),
                serde_json::Value::Number(serde_json::Number::from_u64(1)),
            );
            if let Some(serde_json::Value::Array(entries)) = obj.get_mut("per_level") {
                for e in entries.iter_mut() {
                    if let serde_json::Value::Object(m) = e {
                        m.remove("simd").expect("current schema has simd");
                    }
                }
            }
        }
        // Without the upgrade the v1 value no longer deserializes.
        assert!(
            serde_json::from_str::<KnobTable>(&serde_json::to_string(&value).unwrap()).is_err()
        );
        KnobTable::upgrade_value(&mut value).unwrap();
        let back: KnobTable =
            serde_json::from_str(&serde_json::to_string(&value).unwrap()).unwrap();
        assert_eq!(back.version, KNOB_TABLE_VERSION);
        assert_eq!(back, t, "v1 entries upgrade with simd = Auto");
        back.validate().unwrap();

        // Current-version values pass through untouched.
        let mut current: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        let before = serde_json::to_string(&current).unwrap();
        KnobTable::upgrade_value(&mut current).unwrap();
        assert_eq!(serde_json::to_string(&current).unwrap(), before);

        // Alien values are rejected, not mangled.
        let mut bogus = serde_json::Value::Array(Vec::new());
        assert!(KnobTable::upgrade_value(&mut bogus).is_err());
    }

    #[test]
    fn kernel_exec_space_simd_axis() {
        let s = kernel_exec_space();
        let simd = s.find(PARAM_SIMD).expect("simd axis exists");
        match &s.spec(simd).kind {
            ParamKind::Switch { choices } => {
                let want: Vec<&str> = SimdPolicy::ALL.iter().map(|p| p.name()).collect();
                assert_eq!(choices, &want, "labels index-aligned with SimdPolicy::ALL");
            }
            other => panic!("simd axis has wrong kind {other:?}"),
        }
        // simd is tuned before band (band depends on it), which is
        // tuned before tblock.
        let order = tuning_order(&s);
        let pos = |name: &str| {
            let id = s.find(name).unwrap();
            order.iter().position(|g| g.contains(&id)).unwrap()
        };
        assert!(pos(PARAM_SIMD) < pos(PARAM_BAND_ROWS));
        assert!(pos(PARAM_BAND_ROWS) < pos(PARAM_TBLOCK));
        // Default config resolves to the default knobs (simd = Auto).
        let knobs = KernelKnobs::from_config(&s, &s.default_config());
        assert_eq!(knobs, KernelKnobs::default());
        assert_eq!(knobs.simd, SimdPolicy::Auto);
    }

    #[test]
    fn tuning_order_independent_params() {
        let s = sample_space();
        let order = tuning_order(&s);
        assert_eq!(order.len(), 3);
        let flat: Vec<usize> = order.iter().flatten().map(|p| p.0).collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
