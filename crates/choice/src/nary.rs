//! N-ary search over scalar tunables.
//!
//! "PetaBricks uses an n-ary search tuning algorithm to optimize
//! additional parameters such as parallel-sequential cutoff points ...,
//! block sizes ..., as well as user specified tunable parameters."
//! (§3.2.2)
//!
//! The search samples `arms` evenly spaced candidates across the current
//! interval, keeps the best, and shrinks the interval around it;
//! repeated for `rounds` rounds. Robust for the unimodal-ish cost
//! surfaces cutoffs produce, and needs no derivatives.

/// Minimize `eval` over the integer range `[lo, hi]`.
///
/// Returns the best value found. `eval` may be noisy; each candidate is
/// evaluated once per round, so later rounds re-test the incumbent.
///
/// # Panics
/// Panics if `lo > hi` or `arms < 2`.
pub fn nary_search_int(
    lo: i64,
    hi: i64,
    arms: usize,
    rounds: usize,
    mut eval: impl FnMut(i64) -> f64,
) -> i64 {
    assert!(lo <= hi, "empty search range");
    assert!(arms >= 2, "need at least two arms");
    let mut cur_lo = lo;
    let mut cur_hi = hi;
    let mut best_x = lo;
    let mut best_cost = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let span = cur_hi - cur_lo;
        let mut candidates: Vec<i64> = (0..arms)
            .map(|k| cur_lo + (span * k as i64) / (arms as i64 - 1))
            .collect();
        candidates.dedup();
        let mut round_best_x = candidates[0];
        let mut round_best_cost = f64::INFINITY;
        for &x in &candidates {
            let c = eval(x);
            if c < round_best_cost {
                round_best_cost = c;
                round_best_x = x;
            }
        }
        if round_best_cost < best_cost {
            best_cost = round_best_cost;
            best_x = round_best_x;
        }
        // Shrink to the neighborhood of the round winner.
        let step = (span / (arms as i64 - 1)).max(1);
        cur_lo = (round_best_x - step).max(lo);
        cur_hi = (round_best_x + step).min(hi);
        if cur_hi - cur_lo <= 1 {
            // Interval exhausted: test the boundary pair and stop.
            for x in [cur_lo, cur_hi] {
                let c = eval(x);
                if c < best_cost {
                    best_cost = c;
                    best_x = x;
                }
            }
            break;
        }
    }
    best_x
}

/// Minimize `eval` over the float interval `[lo, hi]` (same scheme).
///
/// # Panics
/// Panics if `lo > hi` or `arms < 2`.
pub fn nary_search_f64(
    lo: f64,
    hi: f64,
    arms: usize,
    rounds: usize,
    mut eval: impl FnMut(f64) -> f64,
) -> f64 {
    assert!(lo <= hi, "empty search range");
    assert!(arms >= 2, "need at least two arms");
    let mut cur_lo = lo;
    let mut cur_hi = hi;
    let mut best_x = lo;
    let mut best_cost = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let span = cur_hi - cur_lo;
        let mut round_best_x = cur_lo;
        let mut round_best_cost = f64::INFINITY;
        for k in 0..arms {
            let x = cur_lo + span * (k as f64) / (arms as f64 - 1.0);
            let c = eval(x);
            if c < round_best_cost {
                round_best_cost = c;
                round_best_x = x;
            }
        }
        if round_best_cost < best_cost {
            best_cost = round_best_cost;
            best_x = round_best_x;
        }
        let step = span / (arms as f64 - 1.0);
        cur_lo = (round_best_x - step).max(lo);
        cur_hi = (round_best_x + step).min(hi);
        if span <= f64::EPSILON * lo.abs().max(hi.abs()).max(1.0) {
            break;
        }
    }
    best_x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_integer_minimum_exactly() {
        let best = nary_search_int(0, 1000, 5, 8, |x| ((x - 371) as f64).abs());
        assert_eq!(best, 371);
    }

    #[test]
    fn finds_minimum_at_boundary() {
        assert_eq!(nary_search_int(10, 99, 4, 6, |x| x as f64), 10);
        assert_eq!(nary_search_int(10, 99, 4, 6, |x| -(x as f64)), 99);
    }

    #[test]
    fn single_point_range() {
        assert_eq!(nary_search_int(7, 7, 3, 3, |_| 0.0), 7);
    }

    #[test]
    fn float_minimum_of_parabola() {
        let best = nary_search_f64(0.0, 2.0, 7, 12, |x| (x - 1.234) * (x - 1.234));
        assert!((best - 1.234).abs() < 1e-3, "best = {best}");
    }

    #[test]
    fn tolerates_noise() {
        // Deterministic "noise" that does not move the basin.
        let mut tick = 0u64;
        let best = nary_search_int(0, 500, 6, 8, |x| {
            tick = tick
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407 + x as u64);
            let noise = ((tick >> 33) % 100) as f64 / 100.0; // [0, 1)
            ((x - 250) as f64).powi(2) / 100.0 + noise
        });
        assert!((best - 250).abs() <= 25, "best = {best}");
    }

    #[test]
    fn eval_call_count_is_bounded() {
        let mut calls = 0usize;
        nary_search_int(0, 1_000_000, 8, 10, |x| {
            calls += 1;
            (x as f64 - 123456.0).abs()
        });
        assert!(calls <= 8 * 10 + 2, "calls = {calls}");
    }
}
