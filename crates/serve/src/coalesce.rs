//! Single-flight request coalescing.
//!
//! When several concurrent requests pose the same not-yet-tuned
//! fingerprint, exactly one of them (the *leader*) runs the tuner; the
//! rest (*followers*) block on the flight and receive the leader's
//! plan. Leadership is only ever assigned to a request that is already
//! executing on a worker, so a full complement of followers cannot
//! deadlock the pool — the leader is one of them, and it is running.
//!
//! A leader that fails (tuner panic, disk error) completes the flight
//! with `None`; followers observe the failure and retry the
//! library-then-flight sequence, so one bad tune does not wedge every
//! waiter forever.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One in-progress tune. `result` is `None` while the leader works;
/// `Some(outcome)` once complete, where the outcome itself is `None`
/// if the leader failed.
struct Flight<T> {
    result: Mutex<Option<Option<T>>>,
    done: Condvar,
}

impl<T: Clone> Flight<T> {
    fn new() -> Self {
        Flight {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn wait(&self) -> Option<T> {
        let mut slot = self.result.lock();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            // Re-check periodically as a belt-and-braces guard against
            // a lost wakeup; the leader always completes the flight.
            let _ = self.done.wait_for(&mut slot, Duration::from_millis(100));
        }
    }

    fn complete(&self, outcome: Option<T>) {
        *self.result.lock() = Some(outcome);
        self.done.notify_all();
    }
}

/// What `join` made of this request.
pub enum Role<T: Clone> {
    /// This request leads: run the work, then call
    /// [`FlightGuard::complete`].
    Leader(FlightGuard<T>),
    /// Another request led; this is its (cloned) outcome — `None`
    /// means the leader failed and the caller should retry.
    Follower(Option<T>),
}

/// Leadership token. Completing (or dropping) it resolves the flight
/// and removes it from the map so later requests start fresh.
pub struct FlightGuard<T: Clone> {
    flights: Arc<Mutex<HashMap<u64, Arc<Flight<T>>>>>,
    key: u64,
    flight: Arc<Flight<T>>,
    completed: bool,
}

impl<T: Clone> FlightGuard<T> {
    /// Publish the outcome to every follower and retire the flight.
    pub fn complete(mut self, outcome: Option<T>) {
        self.resolve(outcome);
    }

    fn resolve(&mut self, outcome: Option<T>) {
        if self.completed {
            return;
        }
        self.completed = true;
        // Retire the flight first: a request arriving after removal
        // starts a new flight instead of joining a finished one.
        self.flights.lock().remove(&self.key);
        self.flight.complete(outcome);
    }
}

impl<T: Clone> Drop for FlightGuard<T> {
    fn drop(&mut self) {
        // A leader that unwound without completing still resolves the
        // flight (as a failure) so followers are never stranded.
        self.resolve(None);
    }
}

/// The flight map: at most one in-progress tune per key.
pub struct SingleFlight<T: Clone> {
    flights: Arc<Mutex<HashMap<u64, Arc<Flight<T>>>>>,
}

impl<T: Clone> Default for SingleFlight<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> SingleFlight<T> {
    pub fn new() -> Self {
        SingleFlight {
            flights: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Join the flight for `key`: the first caller becomes the leader,
    /// everyone else blocks until the leader completes.
    pub fn join(&self, key: u64) -> Role<T> {
        let mut flights = self.flights.lock();
        if let Some(f) = flights.get(&key) {
            let f = Arc::clone(f);
            drop(flights);
            return Role::Follower(f.wait());
        }
        let f = Arc::new(Flight::new());
        flights.insert(key, Arc::clone(&f));
        drop(flights);
        Role::Leader(FlightGuard {
            flights: Arc::clone(&self.flights),
            key,
            flight: f,
            completed: false,
        })
    }

    /// Number of in-progress flights (for tests).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn one_leader_many_followers() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let leads = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let sf = Arc::clone(&sf);
            let leads = Arc::clone(&leads);
            handles.push(std::thread::spawn(move || match sf.join(7) {
                Role::Leader(token) => {
                    leads.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(20));
                    token.complete(Some(42));
                    42
                }
                Role::Follower(v) => v.expect("leader succeeded"),
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(leads.load(Ordering::SeqCst), 1, "exactly one leader");
        assert_eq!(sf.in_flight(), 0, "flight retired");
    }

    #[test]
    fn failed_leader_releases_followers_with_none() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let token = match sf.join(1) {
            Role::Leader(t) => t,
            Role::Follower(_) => panic!("first join must lead"),
        };
        let sf2 = Arc::clone(&sf);
        let follower = std::thread::spawn(move || match sf2.join(1) {
            Role::Follower(v) => v,
            Role::Leader(_) => panic!("second join must follow"),
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(token); // leader unwinds without completing
        assert_eq!(follower.join().unwrap(), None);
        // The key is free again: the next join leads.
        assert!(matches!(sf.join(1), Role::Leader(_)));
    }
}
