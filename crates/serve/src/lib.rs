//! Plan-serving solver engine: the tune-once/serve-many layer.
//!
//! PetaBricks' autotuned plans are artifacts meant to outlive the run
//! that produced them. This crate turns the repo's persistence and
//! guarded-solve machinery into an actual serving path:
//!
//! * [`PlanLibrary`] — a directory of checksummed v5 plan files keyed
//!   by problem fingerprint, with a bounded in-memory LRU in front and
//!   `persist`'s quarantine semantics preserved on reload.
//! * [`SolverService`] — a long-running engine whose serving loop is
//!   `PlanLibrary::get` → `GuardedSolver::solve`, with a bounded
//!   submission queue over the work-stealing pool (typed [`Rejected`]
//!   on overload), warm per-worker [`Workspace`](petamg_grid::Workspace)
//!   arenas, one shared `DirectSolverCache`, and single-flight
//!   coalescing of concurrent tuning for the same fingerprint.
//!
//! ```no_run
//! use petamg_problems::Problem;
//! use petamg_serve::{ServiceConfig, SolveRequest, SolverService};
//!
//! let svc = SolverService::start(ServiceConfig::new("plans/")).unwrap();
//! let instance = petamg_core::training::ProblemInstance::random_for(
//!     &Problem::poisson(), 5, petamg_core::training::Distribution::UnbiasedUniform, 7);
//! let req = SolveRequest::new(Problem::poisson(), instance.working_grid(), instance.b.clone(), 1e-8);
//! let report = svc.solve(req).unwrap();
//! println!("served by {:?} at residual {:.3e}", report.plan, report.report.rel_residual);
//! ```

pub mod coalesce;
pub mod library;
pub mod service;
pub mod telemetry;

pub use coalesce::{Role, SingleFlight};
pub use library::{
    fingerprint_key, plan_file_name, LibraryStats, PlanLibrary, PlanOrigin,
    DEFAULT_LIBRARY_CAPACITY,
};
pub use service::{
    PlanSource, Rejected, ServeError, ServeReport, ServeResponse, ServiceConfig, ServiceStats,
    SolveRequest, SolverService, Ticket, TunePolicy,
};
pub use telemetry::{plan_source_label, ServeTelemetry};

#[cfg(test)]
mod proptests;
