//! Serve-side telemetry: request-phase histograms and spans.
//!
//! [`ServeTelemetry`] pre-registers the request-lifecycle metric
//! families — queue wait, plan resolution (labeled by
//! [`PlanSource`]), end-to-end solve time, and batch-group assembly —
//! plus a preallocated [`SpanRing`] for Chrome-trace export. Handles
//! are resolved once at service startup, so the per-request
//! observation path never touches the registry.
//!
//! Gating is the service's job: every observation site checks
//! [`petamg_obs::enabled`] (one relaxed atomic load) before taking a
//! timestamp, and spans additionally check [`petamg_obs::trace_enabled`].
//! The struct itself is mode-agnostic so tests can drive it directly.

use crate::service::PlanSource;
use petamg_obs::{Histogram, Registry, SpanRing};
use std::time::Instant;

/// Spans retained for Chrome-trace export (oldest overwritten first).
pub const SPAN_RING_CAPACITY: usize = 4096;

/// The Prometheus-style label value for a plan source.
pub fn plan_source_label(source: PlanSource) -> &'static str {
    match source {
        PlanSource::CacheHit => "cache-hit",
        PlanSource::DiskLoad => "disk-load",
        PlanSource::TunedNow => "tuned-now",
        PlanSource::Coalesced => "coalesced",
        PlanSource::Untuned => "untuned",
    }
}

const SOURCES: [PlanSource; 5] = [
    PlanSource::CacheHit,
    PlanSource::DiskLoad,
    PlanSource::TunedNow,
    PlanSource::Coalesced,
    PlanSource::Untuned,
];

fn source_idx(source: PlanSource) -> usize {
    match source {
        PlanSource::CacheHit => 0,
        PlanSource::DiskLoad => 1,
        PlanSource::TunedNow => 2,
        PlanSource::Coalesced => 3,
        PlanSource::Untuned => 4,
    }
}

/// A phase timestamp taken only when telemetry is on: the `Instant`
/// feeds histograms (nanosecond durations), the epoch-relative
/// microsecond start feeds spans.
#[derive(Clone, Copy)]
pub struct PhaseStamp {
    /// Wall-clock start for histogram durations.
    pub at: Instant,
    /// Microseconds since the process epoch, for span records.
    pub start_us: u64,
}

impl PhaseStamp {
    /// `Some` stamp when latency telemetry is enabled, `None` (one
    /// relaxed atomic load, no clock read) otherwise.
    #[inline]
    pub fn capture() -> Option<Self> {
        if !petamg_obs::enabled() {
            return None;
        }
        Some(PhaseStamp {
            at: Instant::now(),
            start_us: petamg_obs::now_us(),
        })
    }
}

/// Pre-resolved request-phase metric handles plus the span ring.
pub struct ServeTelemetry {
    /// Submission-to-worker-pickup latency.
    pub queue_wait_seconds: Histogram,
    /// Plan resolution latency by [`PlanSource`].
    plan_resolve_seconds: [Histogram; 5],
    /// End-to-end guarded-solve latency (per request or batch group).
    pub solve_seconds: Histogram,
    /// Time spent grouping a `submit_many` burst into batch groups.
    pub batch_assembly_seconds: Histogram,
    /// Request-phase spans for Chrome-trace export.
    pub spans: SpanRing,
}

impl ServeTelemetry {
    /// Register the serve metric families in `registry` and resolve
    /// every handle this feed will ever touch.
    pub fn register(registry: &Registry) -> Self {
        ServeTelemetry {
            queue_wait_seconds: registry.histogram("petamg_queue_wait_seconds", &[]),
            plan_resolve_seconds: std::array::from_fn(|i| {
                registry.histogram(
                    "petamg_plan_resolve_seconds",
                    &[("source", plan_source_label(SOURCES[i]))],
                )
            }),
            solve_seconds: registry.histogram("petamg_solve_seconds", &[]),
            batch_assembly_seconds: registry.histogram("petamg_batch_assembly_seconds", &[]),
            spans: SpanRing::with_capacity(SPAN_RING_CAPACITY),
        }
    }

    /// Record one queue wait that started at `stamp` and ended now.
    pub fn observe_queue_wait(&self, stamp: PhaseStamp) {
        self.queue_wait_seconds.record_elapsed(stamp.at);
        if petamg_obs::trace_enabled() {
            self.spans
                .record_since("queue_wait", "serve", "", stamp.start_us);
        }
    }

    /// Record one plan resolution that started at `stamp`.
    pub fn observe_plan_resolve(&self, source: PlanSource, stamp: PhaseStamp) {
        self.plan_resolve_seconds[source_idx(source)].record_elapsed(stamp.at);
        if petamg_obs::trace_enabled() {
            self.spans.record_since(
                "plan_resolve",
                "serve",
                plan_source_label(source),
                stamp.start_us,
            );
        }
    }

    /// Record one guarded solve that started at `stamp`. `detail` is
    /// the serving rung label (or `"ladder-exhausted"`).
    pub fn observe_solve(&self, detail: &'static str, stamp: PhaseStamp) {
        self.solve_seconds.record_elapsed(stamp.at);
        if petamg_obs::trace_enabled() {
            self.spans
                .record_since("solve", "serve", detail, stamp.start_us);
        }
    }

    /// Record one `submit_many` grouping pass that started at `stamp`.
    pub fn observe_batch_assembly(&self, stamp: PhaseStamp) {
        self.batch_assembly_seconds.record_elapsed(stamp.at);
        if petamg_obs::trace_enabled() {
            self.spans
                .record_since("batch_assembly", "serve", "", stamp.start_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petamg_obs::Registry;

    #[test]
    fn every_plan_source_has_its_own_series() {
        let registry = Registry::new();
        let telemetry = ServeTelemetry::register(&registry);
        let stamp = PhaseStamp {
            at: Instant::now(),
            start_us: 0,
        };
        for source in SOURCES {
            telemetry.observe_plan_resolve(source, stamp);
        }
        let snap = registry.snapshot();
        for source in SOURCES {
            assert_eq!(
                snap.histogram_count(
                    "petamg_plan_resolve_seconds",
                    &[("source", plan_source_label(source))]
                ),
                1,
                "{source:?}"
            );
        }
    }

    #[test]
    fn phase_observations_land_in_their_families() {
        let registry = Registry::new();
        let telemetry = ServeTelemetry::register(&registry);
        let stamp = PhaseStamp {
            at: Instant::now(),
            start_us: 0,
        };
        telemetry.observe_queue_wait(stamp);
        telemetry.observe_solve("tuned", stamp);
        telemetry.observe_batch_assembly(stamp);
        let snap = registry.snapshot();
        assert_eq!(snap.histogram_count("petamg_queue_wait_seconds", &[]), 1);
        assert_eq!(snap.histogram_count("petamg_solve_seconds", &[]), 1);
        assert_eq!(
            snap.histogram_count("petamg_batch_assembly_seconds", &[]),
            1
        );
    }
}
