//! Property tests for [`PlanLibrary`]: LRU order and capacity
//! invariants against a reference model under arbitrary access
//! sequences, and evict-then-reload bitwise round-tripping.

use crate::library::{fingerprint_key, PlanLibrary};
use petamg_core::plan::{simple_v_family, TunedFamily, PAPER_ACCURACIES};
use petamg_problems::Problem;
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("petamg-proplib-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Distinct problems: distinct anisotropy ratios give distinct
/// fingerprints (and therefore distinct plan files).
fn problem(i: usize) -> Problem {
    Problem::anisotropic(0.01 * (i + 1) as f64)
}

fn stamped(p: &Problem, max_level: usize) -> TunedFamily {
    let mut fam = simple_v_family(max_level, &PAPER_ACCURACIES);
    fam.problem = p.fingerprint().clone();
    fam
}

/// Reference LRU model: most-recently-used first.
struct ModelLru {
    capacity: usize,
    keys: Vec<u64>,
    evictions: u64,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            capacity,
            keys: Vec::new(),
            evictions: 0,
        }
    }

    fn touch(&mut self, key: u64) {
        self.keys.retain(|k| *k != key);
        self.keys.insert(0, key);
        while self.keys.len() > self.capacity {
            self.keys.pop();
            self.evictions += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under an arbitrary mix of inserts and gets, the library's cache
    /// agrees with a reference LRU: same keys, same recency order,
    /// same eviction count, never over capacity.
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..5,
        ops in prop::collection::vec((0usize..6, 0usize..2), 1..40),
    ) {
        let lib = PlanLibrary::with_capacity(
            tmp_dir(&format!("model-{capacity}")), capacity).unwrap();
        let mut model = ModelLru::new(capacity);
        let mut on_disk = [false; 6];
        for (i, op) in ops {
            let p = problem(i);
            let key = fingerprint_key(p.fingerprint());
            match op {
                0 => {
                    lib.insert(&p, stamped(&p, 3)).unwrap();
                    on_disk[i] = true;
                    model.touch(key);
                }
                _ => {
                    let got = lib.get(&p);
                    prop_assert_eq!(got.is_some(), on_disk[i]);
                    if on_disk[i] {
                        // A hit (memory or disk) makes the key MRU.
                        model.touch(key);
                    }
                }
            }
            prop_assert!(lib.cached() <= capacity);
            prop_assert_eq!(lib.cached_keys(), model.keys.clone());
        }
        prop_assert_eq!(lib.stats().evictions, model.evictions);
    }

    /// Evicting a plan and reloading it from disk yields the bitwise
    /// same artifact: the reloaded plan re-serializes to exactly the
    /// bytes on disk, and the load path re-verified the v5 checksum.
    #[test]
    fn evict_then_reload_is_bitwise_identical(
        i in 0usize..6,
        max_level in 2usize..6,
    ) {
        let lib = PlanLibrary::with_capacity(tmp_dir("bitwise"), 1).unwrap();
        let p = problem(i);
        let inserted = lib.insert(&p, stamped(&p, max_level)).unwrap();
        let file_bytes = std::fs::read_to_string(lib.path_for(p.fingerprint())).unwrap();
        prop_assert_eq!(inserted.to_json(), file_bytes.clone());

        // Evict by inserting a different fingerprint into the
        // capacity-1 cache, then reload from disk.
        let other = problem((i + 1) % 6);
        lib.insert(&other, stamped(&other, 2)).unwrap();
        prop_assert_eq!(lib.cached_keys(), vec![fingerprint_key(other.fingerprint())]);

        let (reloaded, origin) = lib.get(&p).unwrap();
        prop_assert_eq!(origin, crate::library::PlanOrigin::Disk);
        prop_assert_eq!(reloaded.to_json(), file_bytes);
        // `from_json` rejects checksum mismatches, so a successful
        // reload IS the checksum re-verification; double-check the
        // envelope is present all the same.
        prop_assert!(reloaded.to_json().contains("\"checksum\": \"fnv1a:"));
    }
}
