//! Fingerprint-keyed plan library: a directory of v5 plan files with a
//! bounded in-memory LRU cache in front of it.
//!
//! Disk is the system of record, memory is an accelerator. Each
//! [`ProblemFingerprint`] maps to
//! one file, `plan-<fnv1a-hash>.json`, written atomically by
//! `petamg_core::persist::save_plan`. A `get` first consults the LRU
//! cache; on miss it reloads from disk through
//! [`persist::load_plan_for`], which preserves the quarantine
//! semantics the guarded-solve story depends on: a corrupt file is
//! moved aside to `<name>.quarantined` and the library reports a plain
//! miss, so the caller falls back to tuning (or the heuristic rung)
//! instead of executing a scrambled plan.
//!
//! Eviction is safe by construction — an evicted entry is only a cache
//! entry, the file stays on disk and the next `get` reloads it
//! (re-verifying the v5 checksum on the way in).

use parking_lot::Mutex;
use petamg_core::persist::{self, PlanLoadError};
use petamg_core::plan::TunedFamily;
use petamg_obs::{Counter, Registry};
use petamg_problems::{Problem, ProblemFingerprint};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of plans held in memory.
pub const DEFAULT_LIBRARY_CAPACITY: usize = 32;

/// Stable FNV-1a hash over the identity fields of a fingerprint.
/// Used both as the cache key and as the plan file name, so the
/// mapping from fingerprint to file survives process restarts.
pub fn fingerprint_key(fp: &ProblemFingerprint) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(mut h: u64, bytes: &[u8]) -> u64 {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
    let mut h = OFFSET;
    h = eat(h, fp.family.as_bytes());
    h = eat(h, &[0xff]);
    h = eat(h, fp.profile.as_bytes());
    h = eat(h, &[0xff]);
    h = eat(h, &fp.param.to_bits().to_le_bytes());
    h = eat(h, &(fp.n as u64).to_le_bytes());
    h = eat(h, fp.coeff_hash.as_bytes());
    h
}

/// File name a fingerprint's plan is stored under.
pub fn plan_file_name(fp: &ProblemFingerprint) -> String {
    format!("plan-{:016x}.json", fingerprint_key(fp))
}

/// Where a served plan came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanOrigin {
    /// The in-memory LRU cache.
    Memory,
    /// Reloaded from the plan directory (checksum re-verified).
    Disk,
}

/// Counter snapshot for observability and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LibraryStats {
    /// `get` calls served from memory.
    pub hits: u64,
    /// `get` calls that found nothing (no file, or the file was bad).
    pub misses: u64,
    /// `get` calls served by reloading a plan file from disk.
    pub disk_loads: u64,
    /// Corrupt plan files moved aside to `<name>.quarantined`.
    pub quarantined: u64,
    /// Healthy plans (cached or on disk) rejected because their
    /// fingerprint did not match the posed problem (hash collision or a
    /// hand-edited file).
    pub mismatches: u64,
    /// Real I/O failures reading a plan file (permissions, truncated
    /// device reads, …) — **not** the routine file-absent miss.
    pub io_errors: u64,
    /// Cache entries dropped to keep the memory bound.
    pub evictions: u64,
    /// Plans written through `insert`.
    pub inserts: u64,
}

struct Counters {
    hits: Counter,
    misses: Counter,
    disk_loads: Counter,
    quarantined: Counter,
    mismatches: Counter,
    io_errors: Counter,
    evictions: Counter,
    inserts: Counter,
}

impl Default for Counters {
    /// Detached counters: a library built standalone counts without
    /// any registry. [`PlanLibrary::with_registry`] swaps these for
    /// registered handles.
    fn default() -> Self {
        Counters {
            hits: Counter::detached(),
            misses: Counter::detached(),
            disk_loads: Counter::detached(),
            quarantined: Counter::detached(),
            mismatches: Counter::detached(),
            io_errors: Counter::detached(),
            evictions: Counter::detached(),
            inserts: Counter::detached(),
        }
    }
}

impl Counters {
    fn registered(registry: &Registry) -> Self {
        let c = |name: &'static str| registry.counter(name, &[]);
        Counters {
            hits: c("petamg_library_hits_total"),
            misses: c("petamg_library_misses_total"),
            disk_loads: c("petamg_library_disk_loads_total"),
            quarantined: c("petamg_library_quarantined_total"),
            mismatches: c("petamg_library_mismatches_total"),
            io_errors: c("petamg_library_io_errors_total"),
            evictions: c("petamg_library_evictions_total"),
            inserts: c("petamg_library_inserts_total"),
        }
    }
}

/// A directory of tuned-plan files with a bounded LRU cache in front.
///
/// All methods take `&self`; the library is shared across serving
/// workers behind an `Arc`.
pub struct PlanLibrary {
    dir: PathBuf,
    capacity: usize,
    /// key → (plan, last-touched tick). The tick pattern matches
    /// `DirectSolverCache`: monotone counter, evict the smallest.
    cache: Mutex<HashMap<u64, (Arc<TunedFamily>, u64)>>,
    tick: AtomicU64,
    stats: Counters,
    /// Fingerprint → cache key / file name. [`fingerprint_key`] in
    /// production; tests swap in a colliding function to exercise the
    /// aliasing defenses (the key is a *locator*, never an identity —
    /// every hit is re-verified against the full fingerprint).
    key_fn: fn(&ProblemFingerprint) -> u64,
}

impl PlanLibrary {
    /// Open (creating if needed) a plan directory with the default
    /// in-memory capacity.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::with_capacity(dir, DEFAULT_LIBRARY_CAPACITY)
    }

    /// Open with an explicit in-memory capacity bound (≥ 1).
    pub fn with_capacity(dir: impl Into<PathBuf>, capacity: usize) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(PlanLibrary {
            dir,
            capacity: capacity.max(1),
            cache: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            stats: Counters::default(),
            key_fn: fingerprint_key,
        })
    }

    /// File this library's counters in `registry` under the
    /// `petamg_library_*_total` names, replacing the detached
    /// defaults. Counts made before the swap are dropped — call this
    /// at construction (the service does).
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.stats = Counters::registered(registry);
        self
    }

    /// Replace the fingerprint→key function (cache key **and** file
    /// name). A test seam: forcing distinct fingerprints onto one key
    /// exercises the collision defenses without reversing FNV-1a.
    pub fn with_key_fn(mut self, key_fn: fn(&ProblemFingerprint) -> u64) -> Self {
        self.key_fn = key_fn;
        self
    }

    /// The plan directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The in-memory capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of plans currently cached in memory (≤ capacity).
    pub fn cached(&self) -> usize {
        self.cache.lock().len()
    }

    /// Path the plan for `fp` is (or would be) stored at.
    pub fn path_for(&self, fp: &ProblemFingerprint) -> PathBuf {
        self.dir
            .join(format!("plan-{:016x}.json", (self.key_fn)(fp)))
    }

    /// Cached keys in most-recently-used-first order (for tests).
    pub fn cached_keys(&self) -> Vec<u64> {
        let cache = self.cache.lock();
        let mut entries: Vec<(u64, u64)> = cache.iter().map(|(k, (_, t))| (*k, *t)).collect();
        entries.sort_by_key(|&(_, tick)| std::cmp::Reverse(tick));
        entries.into_iter().map(|(k, _)| k).collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LibraryStats {
        LibraryStats {
            hits: self.stats.hits.get(),
            misses: self.stats.misses.get(),
            disk_loads: self.stats.disk_loads.get(),
            quarantined: self.stats.quarantined.get(),
            mismatches: self.stats.mismatches.get(),
            io_errors: self.stats.io_errors.get(),
            evictions: self.stats.evictions.get(),
            inserts: self.stats.inserts.get(),
        }
    }

    fn bump(counter: &Counter) {
        counter.inc();
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Put `plan` in the cache under `key`, evicting the least recently
    /// used entries to stay within capacity.
    fn cache_put(&self, key: u64, plan: Arc<TunedFamily>) {
        let tick = self.next_tick();
        let mut cache = self.cache.lock();
        cache.insert(key, (plan, tick));
        while cache.len() > self.capacity {
            let stalest = cache
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| *k)
                .expect("cache over capacity implies at least one entry");
            cache.remove(&stalest);
            Self::bump(&self.stats.evictions);
        }
    }

    /// Fetch the plan for `problem`: memory first, then disk.
    ///
    /// Returns `None` when no usable plan exists — never a corrupt
    /// one. A file that fails to parse or checksum is quarantined by
    /// `persist::load_plan_for` and counted; a healthy file whose
    /// fingerprint does not match the posed problem is left in place
    /// and counted. Either way the caller should tune (or let the
    /// guarded ladder fall back to its heuristic rung).
    pub fn get(&self, problem: &Problem) -> Option<(Arc<TunedFamily>, PlanOrigin)> {
        let key = (self.key_fn)(problem.fingerprint());
        {
            let tick = self.next_tick();
            let mut cache = self.cache.lock();
            if let Some((plan, stamp)) = cache.get_mut(&key) {
                // The key is only a locator: a cache hit must be
                // verified against the full posed fingerprint before it
                // is served. Two distinct problems whose fingerprints
                // hash to one key would otherwise alias — the second
                // would silently execute a plan tuned for the first.
                if plan.ensure_problem(problem.fingerprint()).is_ok() {
                    *stamp = tick;
                    Self::bump(&self.stats.hits);
                    return Some((Arc::clone(plan), PlanOrigin::Memory));
                }
                // The colliding key also names the on-disk file, so the
                // disk path below could only reproduce the same
                // mismatch; report the miss here without the wasted
                // load. The cached entry stays — it is correct for the
                // problem that inserted it.
                Self::bump(&self.stats.mismatches);
                Self::bump(&self.stats.misses);
                return None;
            }
        }
        match persist::load_plan_for(&self.path_for(problem.fingerprint()), problem) {
            Ok(family) => {
                Self::bump(&self.stats.disk_loads);
                let plan = Arc::new(family);
                self.cache_put(key, Arc::clone(&plan));
                Some((plan, PlanOrigin::Disk))
            }
            Err(PlanLoadError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                // No file: the routine cold miss.
                Self::bump(&self.stats.misses);
                None
            }
            Err(PlanLoadError::Io(_)) => {
                // The file exists but could not be read (permissions,
                // device error, …). Still a miss — the ladder's
                // heuristic rung covers it — but distinguishable from
                // "never tuned" so operators can see a sick plan dir.
                Self::bump(&self.stats.io_errors);
                Self::bump(&self.stats.misses);
                None
            }
            Err(PlanLoadError::Parse { quarantined, .. }) => {
                if quarantined.is_some() {
                    Self::bump(&self.stats.quarantined);
                }
                Self::bump(&self.stats.misses);
                None
            }
            Err(PlanLoadError::ProblemMismatch(_)) => {
                Self::bump(&self.stats.mismatches);
                Self::bump(&self.stats.misses);
                None
            }
        }
    }

    /// Persist a freshly tuned plan and cache it.
    ///
    /// The plan must carry `problem`'s fingerprint (tuners stamp it;
    /// the service re-stamps hand-built families) — a mismatch is
    /// rejected here rather than on every future load. The file write
    /// is atomic, so concurrent readers only ever see whole plans.
    pub fn insert(
        &self,
        problem: &Problem,
        family: TunedFamily,
    ) -> std::io::Result<Arc<TunedFamily>> {
        if family.ensure_problem(problem.fingerprint()).is_err() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "plan fingerprint does not match the problem it is filed under",
            ));
        }
        let key = (self.key_fn)(problem.fingerprint());
        persist::save_plan(&family, &self.path_for(problem.fingerprint()))?;
        Self::bump(&self.stats.inserts);
        let plan = Arc::new(family);
        self.cache_put(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Drop every in-memory entry (disk untouched). Tests use this to
    /// force disk reloads.
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petamg_core::plan::{simple_v_family, PAPER_ACCURACIES};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("petamg-library-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn stamped(problem: &Problem, max_level: usize) -> TunedFamily {
        let mut fam = simple_v_family(max_level, &PAPER_ACCURACIES);
        fam.problem = problem.fingerprint().clone();
        fam
    }

    #[test]
    fn keys_distinguish_canonical_problems() {
        let problems = [
            Problem::poisson(),
            Problem::anisotropic(0.1),
            Problem::anisotropic(0.01),
            Problem::smooth_sinusoidal(17),
            Problem::jump_inclusion(17),
        ];
        let keys: Vec<u64> = problems
            .iter()
            .map(|p| fingerprint_key(p.fingerprint()))
            .collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "problems {i} and {j} collide");
            }
        }
    }

    #[test]
    fn insert_then_get_hits_memory_then_disk() {
        let lib = PlanLibrary::open(tmp_dir("roundtrip")).unwrap();
        let poisson = Problem::poisson();
        assert!(lib.get(&poisson).is_none(), "empty library misses");
        lib.insert(&poisson, stamped(&poisson, 4)).unwrap();
        let (_, origin) = lib.get(&poisson).unwrap();
        assert_eq!(origin, PlanOrigin::Memory);
        lib.clear_cache();
        let (plan, origin) = lib.get(&poisson).unwrap();
        assert_eq!(origin, PlanOrigin::Disk);
        assert_eq!(plan.max_level, 4);
        let s = lib.stats();
        assert_eq!((s.hits, s.disk_loads, s.misses), (1, 1, 1));
    }

    #[test]
    fn capacity_bound_holds_and_disk_backs_evictions() {
        let lib = PlanLibrary::with_capacity(tmp_dir("evict"), 2).unwrap();
        let problems = [
            Problem::poisson(),
            Problem::anisotropic(0.1),
            Problem::anisotropic(0.01),
        ];
        for p in &problems {
            lib.insert(p, stamped(p, 3)).unwrap();
        }
        assert_eq!(lib.cached(), 2);
        assert_eq!(lib.stats().evictions, 1);
        // The evicted (oldest) plan reloads from disk.
        let (_, origin) = lib.get(&problems[0]).unwrap();
        assert_eq!(origin, PlanOrigin::Disk);
    }

    /// Regression test for plan-cache collision aliasing: force two
    /// distinct fingerprints onto one cache key (and thus one file) and
    /// assert the second problem is **never** served the first's plan —
    /// neither from memory nor from disk. Before the fix, the memory
    /// path trusted the key alone and handed problem B problem A's
    /// plan.
    #[test]
    fn colliding_keys_never_alias_plans() {
        fn collide(_: &ProblemFingerprint) -> u64 {
            0xdead_beef
        }
        let lib = PlanLibrary::open(tmp_dir("collide"))
            .unwrap()
            .with_key_fn(collide);
        let poisson = Problem::poisson();
        let aniso = Problem::anisotropic(0.1);
        assert_ne!(
            fingerprint_key(poisson.fingerprint()),
            fingerprint_key(aniso.fingerprint()),
            "distinct problems (collision is forced by the key seam)"
        );
        lib.insert(&poisson, stamped(&poisson, 4)).unwrap();

        // Memory path: the cached entry under the shared key carries
        // Poisson's fingerprint; posing aniso must miss, not alias.
        assert!(lib.get(&aniso).is_none(), "aliased memory hit");
        let s = lib.stats();
        assert_eq!((s.hits, s.mismatches, s.misses), (0, 1, 1));

        // Disk path: the shared key also names the file, so a cold
        // cache must reject it by fingerprint too.
        lib.clear_cache();
        assert!(lib.get(&aniso).is_none(), "aliased disk load");
        let s = lib.stats();
        assert_eq!((s.mismatches, s.misses, s.disk_loads), (2, 2, 0));

        // The rightful owner still gets its plan back.
        let (plan, _) = lib.get(&poisson).expect("owner must still be served");
        assert!(plan.ensure_problem(poisson.fingerprint()).is_ok());
        // And a hit for the owner leaves the entry cached without
        // evicting it for the mismatched prober.
        assert!(lib.get(&poisson).is_some());
        assert!(lib.get(&aniso).is_none());
    }

    #[test]
    fn unreadable_file_counts_io_error_not_plain_miss() {
        let dir = tmp_dir("ioerr");
        let lib = PlanLibrary::open(&dir).unwrap();
        let poisson = Problem::poisson();
        // Absent file: a plain miss, no io_errors.
        assert!(lib.get(&poisson).is_none());
        let s = lib.stats();
        assert_eq!((s.misses, s.io_errors), (1, 0));

        // A directory where the plan file should be: reading it fails
        // with a real I/O error, not NotFound.
        std::fs::create_dir_all(lib.path_for(poisson.fingerprint())).unwrap();
        assert!(lib.get(&poisson).is_none());
        let s = lib.stats();
        assert_eq!((s.misses, s.io_errors), (2, 1));
    }

    #[test]
    fn registered_counters_surface_in_the_snapshot() {
        let registry = Registry::new();
        let lib = PlanLibrary::open(tmp_dir("registry"))
            .unwrap()
            .with_registry(&registry);
        let poisson = Problem::poisson();
        assert!(lib.get(&poisson).is_none());
        lib.insert(&poisson, stamped(&poisson, 4)).unwrap();
        lib.get(&poisson).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("petamg_library_misses_total", &[]), 1);
        assert_eq!(snap.counter("petamg_library_inserts_total", &[]), 1);
        assert_eq!(snap.counter("petamg_library_hits_total", &[]), 1);
        // The legacy stats shape reads through the same counters.
        let s = lib.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn mismatched_insert_is_rejected() {
        let lib = PlanLibrary::open(tmp_dir("mismatch")).unwrap();
        let aniso = Problem::anisotropic(0.1);
        // A Poisson-stamped family filed under anisotropic is a bug.
        let fam = simple_v_family(3, &PAPER_ACCURACIES);
        assert!(lib.insert(&aniso, fam).is_err());
    }
}
