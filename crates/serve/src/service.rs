//! The plan-serving solver engine.
//!
//! A [`SolverService`] is a long-running front door over the
//! tune-once/serve-many artifacts: its serving loop is
//! `PlanLibrary::get` → `GuardedSolver::solve`. Requests enter through
//! a bounded submission queue over the `petamg-runtime` work-stealing
//! pool; when the queue is full, [`SolverService::submit`] returns the
//! typed [`Rejected`] instead of queueing unboundedly. Each pool
//! worker owns a warm [`Workspace`] arena, every request shares one
//! [`DirectSolverCache`] for the ladder's direct rung, and concurrent
//! requests for the same not-yet-tuned fingerprint coalesce into a
//! single tuning run (see [`crate::coalesce`]).
//!
//! Failure domains are per-request: a panic inside a solve is caught
//! on the worker and surfaces as [`ServeError::Panicked`] on that
//! request's ticket; a corrupt plan file is quarantined by the library
//! and the request re-tunes; an exhausted degradation ladder returns
//! the typed [`ServeError::Ladder`] with the iterate restored to the
//! initial guess. The service itself keeps serving.

use crate::coalesce::{Role, SingleFlight};
use crate::library::{fingerprint_key, PlanLibrary, PlanOrigin};
use crate::telemetry::{PhaseStamp, ServeTelemetry};
use parking_lot::{Condvar, Mutex};
use petamg_core::faults::{self, Fault};
use petamg_core::guard::{GuardedReport, GuardedSolver, SolveError};
use petamg_core::plan::{simple_v_family, TunedFamily, PAPER_ACCURACIES};
use petamg_core::telemetry::{rung_label, SolveTelemetry};
use petamg_core::training::Distribution;
use petamg_core::tuner::{TunerOptions, VTuner};
use petamg_grid::{batch_width, size_level, Exec, Grid2d, Workspace, WorkspaceStats};
use petamg_obs::{self as obs, Counter, Gauge, Registry, TelemetrySnapshot};
use petamg_problems::Problem;
use petamg_runtime::ThreadPool;
use petamg_solvers::{DirectSolverCache, GuardConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

/// A caller-supplied tuning function: `(problem, level) -> family`.
pub type TuneFn = dyn Fn(&Problem, usize) -> TunedFamily + Send + Sync;

/// How the service produces a plan for a fingerprint it has never
/// seen.
#[derive(Clone)]
pub enum TunePolicy {
    /// File the hand-built `MULTIGRID-V-SIMPLE` family (re-stamped
    /// with the request's fingerprint). Instant; the right default for
    /// a service that should never block a request on a tuning run.
    Heuristic,
    /// Run the accuracy-aware DP autotuner (`TunerOptions::quick`) at
    /// the request's level. Expensive — minutes at deep levels — but
    /// produces a genuinely tuned plan.
    QuickTune,
    /// Caller-supplied tuner. The returned family's fingerprint is
    /// re-stamped by the service, so hand-built families work as-is.
    Custom(Arc<TuneFn>),
}

impl std::fmt::Debug for TunePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TunePolicy::Heuristic => write!(f, "Heuristic"),
            TunePolicy::QuickTune => write!(f, "QuickTune"),
            TunePolicy::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// Configuration for [`SolverService::start`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Directory of plan files (created if missing).
    pub plan_dir: PathBuf,
    /// Worker threads in the serving pool.
    pub workers: usize,
    /// Admission bound: submitted-but-unfinished requests beyond this
    /// are rejected.
    pub queue_capacity: usize,
    /// In-memory plan cache bound (disk backs evictions).
    pub library_capacity: usize,
    /// Factorization cache bound for the ladder's direct rung.
    pub factor_capacity: usize,
    /// Execution policy inside a single solve. Defaults to sequential:
    /// the service parallelizes across requests, not within one.
    pub exec: Exec,
    /// Guard budgets applied to every request.
    pub guard: GuardConfig,
    /// What to do on a fingerprint miss.
    pub tuning: TunePolicy,
    /// Batched dispatch width override (4 or 8). `None` resolves the
    /// host's width once at startup via [`petamg_grid::batch_width`]:
    /// 8 on AVX-512 hosts, 4 elsewhere. Width only sets how many
    /// same-fingerprint requests amortize one guarded solve — results
    /// are bitwise identical at every width.
    pub batch_width: Option<usize>,
}

impl ServiceConfig {
    /// Defaults: 4 workers, 64-deep queue, sequential per-request
    /// execution, heuristic tuning.
    pub fn new(plan_dir: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            plan_dir: plan_dir.into(),
            workers: 4,
            queue_capacity: 64,
            library_capacity: crate::library::DEFAULT_LIBRARY_CAPACITY,
            factor_capacity: petamg_solvers::DEFAULT_FACTOR_CAPACITY,
            exec: Exec::seq(),
            guard: GuardConfig::default(),
            tuning: TunePolicy::Heuristic,
            batch_width: None,
        }
    }

    /// Set the worker count (≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the admission bound (≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Set the in-memory plan cache bound.
    pub fn with_library_capacity(mut self, capacity: usize) -> Self {
        self.library_capacity = capacity.max(1);
        self
    }

    /// Set the per-solve execution policy.
    pub fn with_exec(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Set the guard budgets.
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Set the tuning policy.
    pub fn with_tuning(mut self, tuning: TunePolicy) -> Self {
        self.tuning = tuning;
        self
    }

    /// Force the batched dispatch width (4 or 8) instead of resolving
    /// the host's width. A width-8 override on a non-AVX-512 host is
    /// legal — the portable 8-lane backend serves it. Results are
    /// bitwise identical at every width; this is an amortization knob.
    ///
    /// # Panics
    /// Panics if `width` is not 4 or 8.
    pub fn with_batch_width(mut self, width: usize) -> Self {
        assert!(width == 4 || width == 8, "batch width must be 4 or 8");
        self.batch_width = Some(width);
        self
    }
}

/// One solve request. The iterate `x0` is the initial guess; `b` the
/// right-hand side (boundary ring included, as everywhere else).
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// The posed problem (selects the plan via its fingerprint).
    pub problem: Problem,
    /// Initial guess (returned as the solution grid).
    pub x0: Grid2d,
    /// Right-hand side.
    pub b: Grid2d,
    /// Relative-residual target.
    pub tol: f64,
    /// Record the executor's tracer in the response.
    pub trace: bool,
    /// Faults to arm on the worker thread serving this request, for
    /// chaos drills: thread-local faults armed on a client thread
    /// would never fire on the pool, so the request carries them to
    /// where the work runs. Cleared when the request finishes.
    pub faults: Vec<Fault>,
}

impl SolveRequest {
    /// A request with tracing off and no faults.
    pub fn new(problem: Problem, x0: Grid2d, b: Grid2d, tol: f64) -> Self {
        SolveRequest {
            problem,
            x0,
            b,
            tol,
            trace: false,
            faults: Vec::new(),
        }
    }

    /// Record the executor's tracer in the response.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Arm `faults` on the serving worker for this request.
    pub fn with_faults(mut self, faults: Vec<Fault>) -> Self {
        self.faults = faults;
        self
    }
}

/// Where the plan that served a request came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// The library's in-memory LRU cache.
    CacheHit,
    /// Reloaded from the plan directory.
    DiskLoad,
    /// This request led a tuning flight.
    TunedNow,
    /// Another in-flight request tuned it; this one waited.
    Coalesced,
    /// No plan could be produced (tuner failure); the ladder served
    /// from its heuristic rung.
    Untuned,
}

/// Successful response: the solution grid plus the guarded report.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The solution iterate.
    pub x: Grid2d,
    /// The guarded-solve report (rung, residual history, degradations).
    pub report: GuardedReport,
    /// Where the plan came from.
    pub plan: PlanSource,
}

/// Typed request failure. The service stays up; only this request is
/// affected.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// The request was malformed (size not 2^k+1, shape mismatch,
    /// problem posed at a different size).
    BadRequest(String),
    /// Every rung of the degradation ladder failed. `x` is the
    /// restored initial guess — never a poisoned iterate.
    Ladder {
        /// The ladder's failure history.
        error: SolveError,
        /// The iterate, restored to the initial guess.
        x: Grid2d,
    },
    /// The solve panicked; the panic was caught on the worker.
    Panicked(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::Ladder { error, .. } => write!(f, "{error}"),
            ServeError::Panicked(msg) => write!(f, "solve panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A response: the solution or a typed error.
pub type ServeResponse = Result<ServeReport, ServeError>;

/// Admission-control rejection: the submission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejected {
    /// The queue bound that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "service at capacity ({} requests in flight)",
            self.capacity
        )
    }
}

impl std::error::Error for Rejected {}

/// Completion handle for a submitted request.
pub struct Ticket {
    slot: Arc<Slot>,
}

struct Slot {
    response: Mutex<Option<ServeResponse>>,
    done: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            response: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn fill(&self, response: ServeResponse) {
        *self.response.lock() = Some(response);
        self.done.notify_all();
    }
}

impl Ticket {
    /// Block until the response is ready. Purely signal-driven: the
    /// worker fills the slot while holding the lock and then notifies,
    /// so an untimed wait can never miss the wakeup and there is no
    /// poll interval to add latency.
    pub fn wait(self) -> ServeResponse {
        let mut slot = self.slot.response.lock();
        loop {
            if let Some(response) = slot.take() {
                return response;
            }
            self.slot.done.wait(&mut slot);
        }
    }

    /// Whether the response is ready (non-blocking).
    pub fn is_done(&self) -> bool {
        self.slot.response.lock().is_some()
    }
}

/// Counter snapshot of a service's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests offered to `submit` (accepted or not).
    pub submitted: u64,
    /// Requests turned away by admission control.
    pub rejected: u64,
    /// Requests that produced a response (ok or typed error).
    pub completed: u64,
    /// Responses that converged.
    pub converged: u64,
    /// Typed ladder failures.
    pub ladder_failures: u64,
    /// Malformed requests.
    pub bad_requests: u64,
    /// Panics caught on workers.
    pub panics: u64,
    /// Tuning runs led (one per fingerprint under coalescing).
    pub tunes: u64,
    /// Tuning runs that failed (panicked or unwound).
    pub tune_failures: u64,
    /// Requests that waited on another request's tuning flight.
    pub coalesced: u64,
    /// Multi-RHS batch groups dispatched (each is one pool job serving
    /// 2+ requests through one batched guarded solve).
    pub batches: u64,
    /// Requests served inside a batch group.
    pub batched_requests: u64,
    /// The service's batched dispatch width (4 or 8): the group cap
    /// for [`SolverService::submit_many`] and the lane count of each
    /// batched guarded solve. Resolved once at startup (or forced via
    /// [`ServiceConfig::with_batch_width`]); constant for the
    /// service's lifetime, surfaced here so operators can see which
    /// width serves batched traffic.
    pub batch_width: usize,
}

/// Request counters, registered in the service's metric registry (one
/// `petamg_requests_*`/`petamg_tuning_*` counter family each) and read
/// back through the legacy [`ServiceStats`] shape. Counters are
/// unconditional — they predate the telemetry gate and stay free.
struct StatCounters {
    submitted: Counter,
    rejected: Counter,
    completed: Counter,
    converged: Counter,
    ladder_failures: Counter,
    bad_requests: Counter,
    panics: Counter,
    tunes: Counter,
    tune_failures: Counter,
    coalesced: Counter,
    batches: Counter,
    batched_requests: Counter,
}

impl StatCounters {
    fn register(registry: &Registry) -> Self {
        let c = |name: &'static str| registry.counter(name, &[]);
        StatCounters {
            submitted: c("petamg_requests_submitted_total"),
            rejected: c("petamg_requests_rejected_total"),
            completed: c("petamg_requests_completed_total"),
            converged: c("petamg_requests_converged_total"),
            ladder_failures: c("petamg_requests_ladder_failures_total"),
            bad_requests: c("petamg_requests_bad_total"),
            panics: c("petamg_requests_panicked_total"),
            tunes: c("petamg_tuning_runs_total"),
            tune_failures: c("petamg_tuning_failures_total"),
            coalesced: c("petamg_tuning_coalesced_total"),
            batches: c("petamg_batch_groups_total"),
            batched_requests: c("petamg_batched_requests_total"),
        }
    }
}

fn bump(c: &Counter) {
    c.inc();
}

struct Inner {
    library: PlanLibrary,
    flights: SingleFlight<Arc<TunedFamily>>,
    cache: Arc<DirectSolverCache>,
    /// One warm arena per pool worker, indexed by
    /// `petamg_runtime::current_worker_index`.
    arenas: Vec<Arc<Workspace>>,
    /// Arena for the (never expected) case of a request handled off
    /// the pool.
    fallback_arena: Arc<Workspace>,
    exec: Exec,
    guard: GuardConfig,
    tuning: TunePolicy,
    queue_capacity: usize,
    /// Batched dispatch width (4 or 8), resolved once at startup.
    batch_width: usize,
    /// Submitted-but-unfinished request count, guarded by a mutex so
    /// admission, blocking submits, and drain can share one condvar.
    in_flight: Mutex<usize>,
    changed: Condvar,
    stats: StatCounters,
    /// The service's metric registry: request counters, library
    /// counters, request-phase and solve-phase histograms, and the
    /// snapshot-time gauges all live here. Per-service, so concurrent
    /// services never mix counts.
    registry: Arc<Registry>,
    /// Request-phase histograms and the span ring.
    telemetry: ServeTelemetry,
    /// Solve-phase feed attached to every guarded solver this service
    /// builds (rung counters, attempt/residual/kernel histograms).
    solve_telemetry: Arc<SolveTelemetry>,
    /// Gauges refreshed at snapshot time.
    in_flight_gauge: Gauge,
    arena_allocations: Gauge,
    arena_reuses: Gauge,
}

/// The plan-serving solver engine. See the module docs.
pub struct SolverService {
    // Declared before `inner` so workers are joined while the shared
    // state is still alive; job closures hold their own `Arc<Inner>`,
    // and the pool is deliberately *outside* it so the last `Arc` drop
    // on a worker thread never tries to join the worker's own pool.
    pool: ThreadPool,
    inner: Arc<Inner>,
}

impl SolverService {
    /// Start a service: spin up the pool, open (or create) the plan
    /// directory, register the telemetry families.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Self> {
        obs::env::warn_unknown_once();
        let workers = cfg.workers.max(1);
        let registry = Arc::new(Registry::new());
        let library = PlanLibrary::with_capacity(&cfg.plan_dir, cfg.library_capacity)?
            .with_registry(&registry);
        let pool = ThreadPool::new(workers);
        let width = cfg.batch_width.unwrap_or_else(batch_width);
        registry.gauge("petamg_batch_width", &[]).set(width as u64);
        let inner = Arc::new(Inner {
            library,
            flights: SingleFlight::new(),
            cache: Arc::new(DirectSolverCache::with_capacity(cfg.factor_capacity)),
            arenas: (0..workers).map(|_| Arc::new(Workspace::new())).collect(),
            fallback_arena: Arc::new(Workspace::new()),
            exec: cfg.exec,
            guard: cfg.guard,
            tuning: cfg.tuning,
            queue_capacity: cfg.queue_capacity.max(1),
            batch_width: width,
            in_flight: Mutex::new(0),
            changed: Condvar::new(),
            stats: StatCounters::register(&registry),
            telemetry: ServeTelemetry::register(&registry),
            solve_telemetry: Arc::new(SolveTelemetry::register(&registry)),
            in_flight_gauge: registry.gauge("petamg_in_flight", &[]),
            arena_allocations: registry.gauge("petamg_arena_allocations", &[]),
            arena_reuses: registry.gauge("petamg_arena_reuses", &[]),
            registry,
        });
        Ok(SolverService { pool, inner })
    }

    /// Submit a request. Returns the typed [`Rejected`] when the
    /// submission queue is full — the caller decides whether to shed
    /// or retry.
    pub fn submit(&self, request: SolveRequest) -> Result<Ticket, Rejected> {
        bump(&self.inner.stats.submitted);
        {
            let mut in_flight = self.inner.in_flight.lock();
            if *in_flight >= self.inner.queue_capacity {
                bump(&self.inner.stats.rejected);
                return Err(Rejected {
                    capacity: self.inner.queue_capacity,
                });
            }
            *in_flight += 1;
        }
        Ok(self.dispatch(request))
    }

    /// Submit, blocking until there is room in the queue. The
    /// backpressure-friendly front door for batch drivers.
    pub fn submit_blocking(&self, request: SolveRequest) -> Ticket {
        bump(&self.inner.stats.submitted);
        {
            let mut in_flight = self.inner.in_flight.lock();
            while *in_flight >= self.inner.queue_capacity {
                self.inner.changed.wait(&mut in_flight);
            }
            *in_flight += 1;
        }
        self.dispatch(request)
    }

    /// Submit and wait: the synchronous convenience wrapper.
    pub fn solve(&self, request: SolveRequest) -> ServeResponse {
        self.submit_blocking(request).wait()
    }

    /// Submit many requests at once, blocking for queue room, and
    /// return their tickets in request order.
    ///
    /// Requests posing the **same problem at the same size** are
    /// grouped — up to the service's dispatch width
    /// ([`ServiceStats::batch_width`]: 8 on AVX-512 hosts, 4
    /// elsewhere, unless forced by
    /// [`ServiceConfig::with_batch_width`]) per
    /// group, in arrival order — and each group is served by one
    /// multi-RHS guarded solve on one worker, amortizing plan lookup,
    /// workspace leasing, and coefficient traffic across the group.
    /// Grouping compares the full problem fingerprint (never just its
    /// hash), so colliding fingerprints cannot share a batch. Requests
    /// that can't batch — traced, fault-armed, shape-mismatched, or
    /// alone on their fingerprint — dispatch solo, so mixed batch/solo
    /// traffic needs no special handling by the caller. Every request
    /// counts individually toward the admission bound.
    pub fn submit_many(&self, requests: Vec<SolveRequest>) -> Vec<Ticket> {
        let assembly = PhaseStamp::capture();
        let max_group = self.inner.batch_width.min(self.inner.queue_capacity);
        let mut slots: Vec<Arc<Slot>> = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            bump(&self.inner.stats.submitted);
            slots.push(Arc::new(Slot::new()));
        }
        // Group in arrival order. `open` tracks, per (key, n), the
        // group still accepting members.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut open: Vec<(u64, usize, usize)> = Vec::new();
        for (idx, req) in requests.iter().enumerate() {
            let batchable = !req.trace && req.faults.is_empty() && req.x0.n() == req.b.n();
            if !batchable {
                groups.push(vec![idx]);
                continue;
            }
            let key = fingerprint_key(req.problem.fingerprint());
            let n = req.b.n();
            let joined = open.iter().find(|&&(k, gn, gi)| {
                k == key
                    && gn == n
                    && groups[gi].len() < max_group
                    && requests[groups[gi][0]].problem.fingerprint() == req.problem.fingerprint()
            });
            match joined {
                Some(&(_, _, gi)) => groups[gi].push(idx),
                None => {
                    groups.push(vec![idx]);
                    open.push((key, n, groups.len() - 1));
                }
            }
        }
        if let Some(stamp) = assembly {
            self.inner.telemetry.observe_batch_assembly(stamp);
        }
        let mut requests: Vec<Option<SolveRequest>> = requests.into_iter().map(Some).collect();
        for idxs in groups {
            let width = idxs.len();
            {
                let mut in_flight = self.inner.in_flight.lock();
                while *in_flight + width > self.inner.queue_capacity {
                    self.inner.changed.wait(&mut in_flight);
                }
                *in_flight += width;
            }
            let batch: Vec<(SolveRequest, Arc<Slot>)> = idxs
                .into_iter()
                .map(|i| {
                    let req = requests[i].take().expect("each request dispatched once");
                    (req, Arc::clone(&slots[i]))
                })
                .collect();
            self.spawn_group(batch, PhaseStamp::capture());
        }
        slots.into_iter().map(|slot| Ticket { slot }).collect()
    }

    /// [`SolverService::submit_many`], then wait for every response.
    /// Responses are in request order.
    pub fn solve_many(&self, requests: Vec<SolveRequest>) -> Vec<ServeResponse> {
        self.submit_many(requests)
            .into_iter()
            .map(Ticket::wait)
            .collect()
    }

    /// Dispatch one admitted group: solo for singletons, one batched
    /// pool job otherwise. `queued` is the admission timestamp (taken
    /// only when telemetry is on) for the queue-wait histogram.
    fn spawn_group(&self, batch: Vec<(SolveRequest, Arc<Slot>)>, queued: Option<PhaseStamp>) {
        let width = batch.len();
        if width == 1 {
            let (request, slot) = batch.into_iter().next().expect("width == 1");
            self.spawn_request(request, slot, queued);
            return;
        }
        bump(&self.inner.stats.batches);
        self.inner.stats.batched_requests.add(width as u64);
        let inner = Arc::clone(&self.inner);
        self.pool.spawn(move || {
            if let Some(stamp) = queued {
                inner.telemetry.observe_queue_wait(stamp);
            }
            let (requests, slots): (Vec<SolveRequest>, Vec<Arc<Slot>>) = batch.into_iter().unzip();
            let responses = catch_unwind(AssertUnwindSafe(|| handle_group(&inner, requests)))
                .unwrap_or_else(|p| {
                    faults::clear();
                    bump(&inner.stats.panics);
                    let msg = panic_message(&p);
                    (0..width)
                        .map(|_| Err(ServeError::Panicked(msg.clone())))
                        .collect()
                });
            for response in &responses {
                bump(&inner.stats.completed);
                match response {
                    Ok(_) => bump(&inner.stats.converged),
                    Err(ServeError::Ladder { .. }) => bump(&inner.stats.ladder_failures),
                    Err(ServeError::BadRequest(_)) => bump(&inner.stats.bad_requests),
                    Err(ServeError::Panicked(_)) => {}
                }
            }
            {
                let mut in_flight = inner.in_flight.lock();
                *in_flight -= width;
            }
            inner.changed.notify_all();
            for (slot, response) in slots.iter().zip(responses) {
                slot.fill(response);
            }
        });
    }

    fn dispatch(&self, request: SolveRequest) -> Ticket {
        let slot = Arc::new(Slot::new());
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        self.spawn_request(request, slot, PhaseStamp::capture());
        ticket
    }

    fn spawn_request(&self, request: SolveRequest, slot: Arc<Slot>, queued: Option<PhaseStamp>) {
        let inner = Arc::clone(&self.inner);
        self.pool.spawn(move || {
            if let Some(stamp) = queued {
                inner.telemetry.observe_queue_wait(stamp);
            }
            let response = catch_unwind(AssertUnwindSafe(|| handle(&inner, request)))
                .unwrap_or_else(|p| {
                    // The handler's own catch covers the solve; this
                    // outer net covers the handler itself, so a worker
                    // is never killed by a request.
                    faults::clear();
                    bump(&inner.stats.panics);
                    Err(ServeError::Panicked(panic_message(&p)))
                });
            bump(&inner.stats.completed);
            match &response {
                Ok(_) => bump(&inner.stats.converged),
                Err(ServeError::Ladder { .. }) => bump(&inner.stats.ladder_failures),
                Err(ServeError::BadRequest(_)) => bump(&inner.stats.bad_requests),
                Err(ServeError::Panicked(_)) => {}
            }
            // Release the queue slot before publishing the response:
            // a client that observes its ticket done must also observe
            // the request gone from the in-flight count.
            {
                let mut in_flight = inner.in_flight.lock();
                *in_flight -= 1;
            }
            inner.changed.notify_all();
            slot.fill(response);
        });
    }

    /// Block until every accepted request has completed.
    pub fn drain(&self) {
        let mut in_flight = self.inner.in_flight.lock();
        while *in_flight > 0 {
            self.inner.changed.wait(&mut in_flight);
        }
    }

    /// Requests currently accepted but not yet completed.
    pub fn in_flight(&self) -> usize {
        *self.inner.in_flight.lock()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.inner.stats;
        ServiceStats {
            submitted: s.submitted.get(),
            rejected: s.rejected.get(),
            completed: s.completed.get(),
            converged: s.converged.get(),
            ladder_failures: s.ladder_failures.get(),
            bad_requests: s.bad_requests.get(),
            panics: s.panics.get(),
            tunes: s.tunes.get(),
            tune_failures: s.tune_failures.get(),
            coalesced: s.coalesced.get(),
            batches: s.batches.get(),
            batched_requests: s.batched_requests.get(),
            batch_width: self.inner.batch_width,
        }
    }

    /// The service's metric registry. Every request counter, library
    /// counter, phase histogram, and gauge is registered here; the
    /// registry is per-service, so concurrent services never mix.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// One consistent snapshot of every registered metric, with the
    /// snapshot-time gauges (in-flight count, arena allocation
    /// counters, batch width) refreshed first. This is the stable
    /// machine-readable telemetry schema ([`TelemetrySnapshot::to_json`]).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.inner
            .in_flight_gauge
            .set(*self.inner.in_flight.lock() as u64);
        let (allocations, reuses) = self
            .inner
            .arenas
            .iter()
            .chain(std::iter::once(&self.inner.fallback_arena))
            .map(|a| a.stats())
            .fold((0, 0), |(a, r), s| (a + s.allocations, r + s.reuses));
        self.inner.arena_allocations.set(allocations);
        self.inner.arena_reuses.set(reuses);
        self.inner.registry.snapshot()
    }

    /// The Prometheus text exposition of [`Self::telemetry_snapshot`].
    pub fn prometheus(&self) -> String {
        obs::render_prometheus(&self.telemetry_snapshot())
    }

    /// The retained request-phase spans as a Chrome trace-event JSON
    /// document (load in `chrome://tracing` / `ui.perfetto.dev`).
    /// Empty unless the service ran with `PETAMG_TELEMETRY=2`.
    pub fn chrome_trace(&self) -> String {
        obs::chrome_trace_json(&self.inner.telemetry.spans.spans())
    }

    /// The service's batched dispatch width (4 or 8).
    pub fn batch_width(&self) -> usize {
        self.inner.batch_width
    }

    /// The plan library (stats, capacity, cached keys).
    pub fn library(&self) -> &PlanLibrary {
        &self.inner.library
    }

    /// The shared direct-factor cache.
    pub fn direct_cache(&self) -> &DirectSolverCache {
        &self.inner.cache
    }

    /// Per-worker arena statistics, for warm-path allocation
    /// accounting in tests.
    pub fn arena_stats(&self) -> Vec<WorkspaceStats> {
        self.inner.arenas.iter().map(|a| a.stats()).collect()
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        // Let in-flight work finish so tickets never dangle; the pool
        // (dropped first, field order) then joins its workers.
        self.drain();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Serve one request on the current worker thread.
fn handle(inner: &Inner, request: SolveRequest) -> ServeResponse {
    let SolveRequest {
        problem,
        mut x0,
        b,
        tol,
        trace,
        faults: request_faults,
    } = request;

    let level = validate(&problem, &x0, &b)?;

    // Arm this request's chaos faults on the worker actually running
    // it, and make sure nothing armed here leaks into the next
    // request this worker serves.
    for fault in &request_faults {
        faults::inject(fault.clone());
    }
    let result = serve_solve(inner, &problem, level, &mut x0, &b, tol, trace);
    faults::clear();
    result.map(|(report, plan)| ServeReport {
        x: x0,
        report,
        plan,
    })
}

/// Shape/size validation shared by the solo and batched paths. Returns
/// the request's multigrid level.
fn validate(problem: &Problem, x0: &Grid2d, b: &Grid2d) -> Result<usize, ServeError> {
    let n = b.n();
    if x0.n() != n {
        return Err(ServeError::BadRequest(format!(
            "initial guess is {}x{} but rhs is {n}x{n}",
            x0.n(),
            x0.n()
        )));
    }
    let level = match size_level(n) {
        Some(level) if level >= 1 => level,
        _ => {
            return Err(ServeError::BadRequest(format!(
                "grid side {n} is not 2^k+1 with k >= 1"
            )));
        }
    };
    let posed_sizes = problem.level_sizes();
    if !posed_sizes.is_empty() && !posed_sizes.contains(&n) {
        return Err(ServeError::BadRequest(format!(
            "problem is posed on sizes {posed_sizes:?}, request is {n}"
        )));
    }
    Ok(level)
}

/// Serve one batch group on the current worker thread: resolve the
/// shared plan once, then carry every request through one multi-RHS
/// guarded solve ([`GuardedSolver::solve_many`]). Per-request results
/// are positionally aligned with `requests`. The grouping in
/// [`SolverService::submit_many`] guarantees a shared problem and size,
/// and no traced or fault-armed members; validation failures answer
/// `BadRequest` for their slot and drop out of the batch.
fn handle_group(inner: &Inner, requests: Vec<SolveRequest>) -> Vec<ServeResponse> {
    let count = requests.len();
    let mut responses: Vec<Option<ServeResponse>> =
        std::iter::repeat_with(|| None).take(count).collect();
    let mut members: Vec<usize> = Vec::with_capacity(count);
    let mut xs: Vec<Grid2d> = Vec::with_capacity(count);
    let mut bs: Vec<Grid2d> = Vec::with_capacity(count);
    let mut tols: Vec<f64> = Vec::with_capacity(count);
    let mut posed: Option<(Problem, usize)> = None;
    for (i, req) in requests.into_iter().enumerate() {
        let SolveRequest {
            problem,
            x0,
            b,
            tol,
            ..
        } = req;
        match validate(&problem, &x0, &b) {
            Err(e) => responses[i] = Some(Err(e)),
            Ok(level) => {
                posed.get_or_insert((problem, level));
                members.push(i);
                xs.push(x0);
                bs.push(b);
                tols.push(tol);
            }
        }
    }
    if let Some((problem, level)) = posed {
        let (plan, source) = resolve_plan(inner, &problem, level);
        let workspace = match petamg_runtime::current_worker_index() {
            Some(i) if i < inner.arenas.len() => Arc::clone(&inner.arenas[i]),
            _ => Arc::clone(&inner.fallback_arena),
        };
        let mut solver = GuardedSolver::new(problem)
            .with_exec(inner.exec.clone())
            .with_cache(Arc::clone(&inner.cache))
            .with_workspace(workspace)
            .with_guard_config(inner.guard)
            .with_batch_width(inner.batch_width)
            .with_telemetry(Arc::clone(&inner.solve_telemetry));
        if let Some(plan) = plan {
            solver = solver.with_shared_plan(plan);
        }
        let solve_stamp = PhaseStamp::capture();
        let results = solver.solve_many(&mut xs, &bs, &tols);
        if let Some(stamp) = solve_stamp {
            inner.telemetry.observe_solve("batch", stamp);
        }
        for ((i, x), result) in members.into_iter().zip(xs).zip(results) {
            responses[i] = Some(match result {
                Ok(report) => Ok(ServeReport {
                    x,
                    report,
                    plan: source,
                }),
                Err(error) => Err(ServeError::Ladder { error, x }),
            });
        }
    }
    responses
        .into_iter()
        .map(|r| r.expect("every group slot is answered"))
        .collect()
}

fn serve_solve(
    inner: &Inner,
    problem: &Problem,
    level: usize,
    x: &mut Grid2d,
    b: &Grid2d,
    tol: f64,
    trace: bool,
) -> Result<(GuardedReport, PlanSource), ServeError> {
    let (plan, source) = resolve_plan(inner, problem, level);
    let workspace = match petamg_runtime::current_worker_index() {
        Some(i) if i < inner.arenas.len() => Arc::clone(&inner.arenas[i]),
        _ => Arc::clone(&inner.fallback_arena),
    };
    let mut solver = GuardedSolver::new(problem.clone())
        .with_exec(inner.exec.clone())
        .with_cache(Arc::clone(&inner.cache))
        .with_workspace(workspace)
        .with_guard_config(inner.guard)
        .with_telemetry(Arc::clone(&inner.solve_telemetry));
    if let Some(plan) = plan {
        solver = solver.with_shared_plan(plan);
    }
    if trace {
        solver = solver.with_tracing();
    }
    let stamp = PhaseStamp::capture();
    match solver.solve(x, b, tol) {
        Ok(report) => {
            if let Some(stamp) = stamp {
                inner
                    .telemetry
                    .observe_solve(rung_label(report.rung), stamp);
            }
            Ok((report, source))
        }
        Err(error) => {
            if let Some(stamp) = stamp {
                inner.telemetry.observe_solve("ladder-exhausted", stamp);
            }
            Err(ServeError::Ladder {
                error,
                x: x.clone(),
            })
        }
    }
}

/// Library lookup with single-flight tuning on miss, timed into the
/// `petamg_plan_resolve_seconds{source}` histogram (and a span) when
/// telemetry is on.
fn resolve_plan(
    inner: &Inner,
    problem: &Problem,
    level: usize,
) -> (Option<Arc<TunedFamily>>, PlanSource) {
    let stamp = PhaseStamp::capture();
    let (plan, source) = lookup_or_tune(inner, problem, level);
    if let Some(stamp) = stamp {
        inner.telemetry.observe_plan_resolve(source, stamp);
    }
    (plan, source)
}

/// The untimed body of [`resolve_plan`].
fn lookup_or_tune(
    inner: &Inner,
    problem: &Problem,
    level: usize,
) -> (Option<Arc<TunedFamily>>, PlanSource) {
    let key = fingerprint_key(problem.fingerprint());
    loop {
        if let Some((plan, origin)) = inner.library.get(problem) {
            // A cached plan tuned at a shallower level cannot serve
            // this request's rung 0; fall through and re-tune at the
            // deeper level (the file is overwritten in place).
            if plan.max_level >= level {
                let source = match origin {
                    PlanOrigin::Memory => PlanSource::CacheHit,
                    PlanOrigin::Disk => PlanSource::DiskLoad,
                };
                return (Some(plan), source);
            }
        }
        match inner.flights.join(key) {
            Role::Leader(token) => {
                bump(&inner.stats.tunes);
                let tuned = catch_unwind(AssertUnwindSafe(|| tune(inner, problem, level)));
                match tuned {
                    Ok(family) => {
                        let plan = match inner.library.insert(problem, family) {
                            Ok(plan) => plan,
                            Err(_) => {
                                // Disk refused the write; serving can
                                // continue from memory this once, but
                                // don't publish a plan the library
                                // could not file.
                                token.complete(None);
                                return (None, PlanSource::Untuned);
                            }
                        };
                        token.complete(Some(Arc::clone(&plan)));
                        return (Some(plan), PlanSource::TunedNow);
                    }
                    Err(_) => {
                        bump(&inner.stats.tune_failures);
                        token.complete(None);
                        return (None, PlanSource::Untuned);
                    }
                }
            }
            Role::Follower(outcome) => {
                bump(&inner.stats.coalesced);
                match outcome {
                    Some(plan) if plan.max_level >= level => {
                        return (Some(plan), PlanSource::Coalesced);
                    }
                    // Leader failed, or tuned for a shallower request:
                    // go around again (library hit or fresh flight).
                    _ => continue,
                }
            }
        }
    }
}

/// Produce a plan for `problem` at `level` per the configured policy,
/// re-stamped with the request's fingerprint.
fn tune(inner: &Inner, problem: &Problem, level: usize) -> TunedFamily {
    let mut family = match &inner.tuning {
        TunePolicy::Heuristic => simple_v_family(level.max(1), &PAPER_ACCURACIES),
        TunePolicy::QuickTune => VTuner::new(
            TunerOptions::quick(level.max(1), Distribution::UnbiasedUniform)
                .with_problem(problem.clone()),
        )
        .tune(),
        TunePolicy::Custom(tuner) => tuner(problem, level),
    };
    family.problem = problem.fingerprint().clone();
    family
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("petamg-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn request(problem: Problem, n: usize, seed: u64) -> SolveRequest {
        let instance = petamg_core::training::ProblemInstance::random_for(
            &problem,
            petamg_grid::size_level(n).unwrap(),
            Distribution::UnbiasedUniform,
            seed,
        );
        let x0 = instance.working_grid();
        let b = instance.b.clone();
        SolveRequest::new(problem, x0, b, 1e-8)
    }

    #[test]
    fn serves_a_poisson_request_end_to_end() {
        let svc = SolverService::start(ServiceConfig::new(tmp_dir("basic"))).unwrap();
        let response = svc.solve(request(Problem::poisson(), 17, 1));
        let report = response.expect("poisson at 17 converges");
        assert!(report.report.rel_residual <= 1e-8);
        assert_eq!(report.plan, PlanSource::TunedNow);
        // Second request for the same fingerprint: cache hit, no tune.
        let response = svc.solve(request(Problem::poisson(), 17, 2));
        assert_eq!(response.unwrap().plan, PlanSource::CacheHit);
        let stats = svc.stats();
        assert_eq!(stats.tunes, 1);
        assert_eq!(stats.converged, 2);
    }

    #[test]
    fn bad_sizes_are_typed_not_panics() {
        let svc = SolverService::start(ServiceConfig::new(tmp_dir("bad"))).unwrap();
        let req = SolveRequest::new(
            Problem::poisson(),
            Grid2d::zeros(16),
            Grid2d::zeros(16),
            1e-8,
        );
        match svc.solve(req) {
            Err(ServeError::BadRequest(why)) => assert!(why.contains("2^k+1"), "{why}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        let req = SolveRequest::new(
            Problem::poisson(),
            Grid2d::zeros(9),
            Grid2d::zeros(17),
            1e-8,
        );
        assert!(matches!(svc.solve(req), Err(ServeError::BadRequest(_))));
        assert_eq!(svc.stats().bad_requests, 2);
    }

    #[test]
    fn plans_persist_across_service_restarts() {
        let dir = tmp_dir("restart");
        {
            let svc = SolverService::start(ServiceConfig::new(&dir)).unwrap();
            svc.solve(request(Problem::poisson(), 17, 3)).unwrap();
            assert_eq!(svc.stats().tunes, 1);
        }
        // A fresh service over the same directory serves from disk
        // without re-tuning.
        let svc = SolverService::start(ServiceConfig::new(&dir)).unwrap();
        let report = svc.solve(request(Problem::poisson(), 17, 4)).unwrap();
        assert_eq!(report.plan, PlanSource::DiskLoad);
        assert_eq!(svc.stats().tunes, 0);
    }

    #[test]
    fn deeper_request_retunes_over_shallow_plan() {
        let svc = SolverService::start(ServiceConfig::new(tmp_dir("deeper"))).unwrap();
        svc.solve(request(Problem::poisson(), 17, 5)).unwrap();
        assert_eq!(svc.stats().tunes, 1);
        // 33 = level 5 > the level-4 plan on file: the service
        // re-tunes rather than letting rung 0 reject the plan.
        let report = svc.solve(request(Problem::poisson(), 33, 6)).unwrap();
        assert_eq!(report.plan, PlanSource::TunedNow);
        assert_eq!(svc.stats().tunes, 2);
        assert!(!report.report.degraded(), "rung 0 must serve");
    }

    /// Same-fingerprint requests group into one batched dispatch, and
    /// every batched answer is bitwise identical to the same request
    /// served solo.
    #[test]
    fn batched_dispatch_matches_solo_bitwise() {
        let svc = SolverService::start(ServiceConfig::new(tmp_dir("batch"))).unwrap();
        let requests: Vec<SolveRequest> = (0..4)
            .map(|k| request(Problem::poisson(), 17, 10 + k))
            .collect();
        let solo: Vec<Grid2d> = requests
            .iter()
            .map(|r| {
                let again = SolveRequest::new(r.problem.clone(), r.x0.clone(), r.b.clone(), r.tol);
                svc.solve(again).expect("solo serves").x
            })
            .collect();
        let responses = svc.solve_many(requests);
        assert_eq!(responses.len(), 4);
        for (k, response) in responses.into_iter().enumerate() {
            let report = response.expect("batched lane serves");
            assert_eq!(
                report.x.as_slice(),
                solo[k].as_slice(),
                "lane {k} must be bitwise identical to its solo solve"
            );
            assert!(report.report.rel_residual <= 1e-8);
        }
        let stats = svc.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_requests, 4);
        assert_eq!(stats.converged, 8);
    }

    /// Mixed batch/solo traffic: different fingerprints, different
    /// sizes, a traced request, and a malformed request all submitted
    /// together. Groups form only where legal, everything completes,
    /// answers stay positionally aligned.
    #[test]
    fn mixed_batch_and_solo_traffic_stress() {
        let svc = SolverService::start(
            ServiceConfig::new(tmp_dir("mixed"))
                .with_workers(3)
                .with_queue_capacity(8),
        )
        .unwrap();
        let mut requests = Vec::new();
        // Three Poisson@17 (group of 3), two aniso@17 (group of 2), one
        // Poisson@33 (size singleton), one traced Poisson@17 (solo by
        // policy), one malformed.
        for k in 0..3 {
            requests.push(request(Problem::poisson(), 17, 20 + k));
        }
        for k in 0..2 {
            requests.push(request(Problem::anisotropic(0.1), 17, 30 + k));
        }
        requests.push(request(Problem::poisson(), 33, 40));
        requests.push(request(Problem::poisson(), 17, 41).with_trace());
        requests.push(SolveRequest::new(
            Problem::poisson(),
            Grid2d::zeros(16),
            Grid2d::zeros(16),
            1e-8,
        ));
        let responses = svc.solve_many(requests);
        assert_eq!(responses.len(), 8);
        for (k, response) in responses.iter().enumerate() {
            match k {
                7 => assert!(
                    matches!(response, Err(ServeError::BadRequest(_))),
                    "slot 7 is malformed"
                ),
                6 => {
                    let report = response.as_ref().expect("traced request serves");
                    assert!(
                        !report.report.tracer.events.is_empty(),
                        "traced request keeps its trace on the solo path"
                    );
                }
                _ => {
                    let report = response.as_ref().expect("request {k} serves");
                    assert!(report.report.rel_residual <= 1e-8, "slot {k}");
                }
            }
        }
        let stats = svc.stats();
        assert_eq!(stats.batches, 2, "poisson@17 x3 and aniso@17 x2");
        assert_eq!(stats.batched_requests, 5);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.bad_requests, 1);
        assert_eq!(svc.in_flight(), 0);
    }

    /// A full-width group admits even when the queue bound is smaller
    /// than the batch width (groups are capped at the queue bound).
    #[test]
    fn tiny_queue_still_serves_batches() {
        let svc = SolverService::start(ServiceConfig::new(tmp_dir("tinyq")).with_queue_capacity(2))
            .unwrap();
        let requests: Vec<SolveRequest> = (0..5)
            .map(|k| request(Problem::poisson(), 17, 50 + k))
            .collect();
        let responses = svc.solve_many(requests);
        assert_eq!(responses.len(), 5);
        for response in responses {
            assert!(response.expect("serves").report.rel_residual <= 1e-8);
        }
        let stats = svc.stats();
        assert!(stats.batches >= 2, "groups capped at the queue bound");
        assert_eq!(svc.in_flight(), 0);
    }

    /// Regression test for the ticket wakeup path: `wait` must return
    /// as soon as `fill` signals, not on a poll tick. The old
    /// implementation re-checked every 100 ms; a signal-driven wait
    /// returns within scheduler noise of the fill.
    #[test]
    fn ticket_wait_is_signal_driven_not_polled() {
        use std::time::{Duration, Instant};
        let slot = Arc::new(Slot::new());
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        let t0 = Instant::now();
        let filler = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            slot.fill(Err(ServeError::Panicked("wakeup drill".into())));
        });
        let _ = ticket.wait();
        let waited = t0.elapsed();
        filler.join().unwrap();
        assert!(waited >= Duration::from_millis(25), "{waited:?}");
        assert!(
            waited < Duration::from_millis(95),
            "wait must wake on the fill signal, not a 100 ms poll tick: {waited:?}"
        );
    }

    /// End-to-end telemetry: with the gate open, every request phase
    /// lands in its histogram, the snapshot counters reconcile exactly
    /// with the returned reports and the legacy stats shape, and the
    /// spans export as a Chrome trace. One test drives metrics *and*
    /// spans so the global mode is set once (`Trace` ⊇ `Metrics`).
    #[test]
    fn telemetry_end_to_end_reconciles_with_reports() {
        petamg_obs::set_mode(petamg_obs::TelemetryMode::Trace);
        let svc = SolverService::start(ServiceConfig::new(tmp_dir("telemetry"))).unwrap();
        let r1 = svc
            .solve(request(Problem::poisson(), 17, 70))
            .expect("first solo serves");
        assert_eq!(r1.plan, PlanSource::TunedNow);
        let r2 = svc
            .solve(request(Problem::poisson(), 17, 71))
            .expect("second solo serves");
        assert_eq!(r2.plan, PlanSource::CacheHit);
        let batch: Vec<SolveRequest> = (0..4)
            .map(|k| request(Problem::poisson(), 17, 80 + k))
            .collect();
        let mut reports = vec![r1, r2];
        for response in svc.solve_many(batch) {
            reports.push(response.expect("batched lane serves"));
        }
        let snap = svc.telemetry_snapshot();
        let stats = svc.stats();

        // Snapshot counters reconcile exactly with the returned
        // reports and the legacy stats shape.
        assert_eq!(stats.completed, 6);
        assert_eq!(
            snap.counter("petamg_requests_completed_total", &[]),
            stats.completed
        );
        assert_eq!(
            snap.counter("petamg_requests_submitted_total", &[]),
            stats.submitted
        );
        assert_eq!(snap.counter("petamg_tuning_runs_total", &[]), stats.tunes);
        assert_eq!(
            snap.counter("petamg_batched_requests_total", &[]),
            stats.batched_requests
        );
        let served_total: u64 = ["tuned", "heuristic", "direct"]
            .iter()
            .map(|&r| snap.counter("petamg_rung_served_total", &[("rung", r)]))
            .sum();
        assert_eq!(
            served_total,
            reports.len() as u64,
            "one served-rung count per converged report"
        );
        assert_eq!(
            snap.counter("petamg_library_inserts_total", &[]),
            svc.library().stats().inserts
        );

        // One queue wait and one solve per dispatched job: two solo
        // jobs plus one batch group.
        assert_eq!(snap.histogram_count("petamg_queue_wait_seconds", &[]), 3);
        assert_eq!(snap.histogram_count("petamg_solve_seconds", &[]), 3);
        assert_eq!(
            snap.histogram_count("petamg_plan_resolve_seconds", &[("source", "tuned-now")]),
            1
        );
        assert_eq!(
            snap.histogram_count("petamg_plan_resolve_seconds", &[("source", "cache-hit")]),
            2
        );
        assert_eq!(
            snap.histogram_count("petamg_batch_assembly_seconds", &[]),
            1
        );

        // Gauges are refreshed at snapshot time.
        let gauge = |name: &str| snap.gauges.iter().find(|g| g.name == name).map(|g| g.value);
        assert_eq!(gauge("petamg_batch_width"), Some(svc.batch_width() as u64));
        assert_eq!(gauge("petamg_in_flight"), Some(0));
        assert!(gauge("petamg_arena_reuses").is_some());

        // Spans export as a Chrome trace document with every phase.
        let trace = svc.chrome_trace();
        for phase in ["queue_wait", "plan_resolve", "solve", "batch_assembly"] {
            assert!(
                trace.contains(&format!("\"name\":\"{phase}\"")),
                "missing {phase} span in {trace}"
            );
        }

        // And the Prometheus rendering carries the same families.
        let prom = svc.prometheus();
        assert!(prom.contains("# TYPE petamg_queue_wait_seconds histogram"));
        assert!(prom.contains("petamg_requests_completed_total 6"));
        assert!(prom.contains("petamg_rung_served_total{rung="));
    }

    /// Width is a locator for amortization, never identity: the same
    /// traffic served through a forced-width-4 service and a
    /// forced-width-8 service produces bitwise-identical solutions,
    /// and each service surfaces its dispatch width in the stats and
    /// per-request reports.
    #[test]
    fn forced_width_4_and_8_agree_bitwise() {
        let make = |tag: &str, width: usize| {
            SolverService::start(ServiceConfig::new(tmp_dir(tag)).with_batch_width(width)).unwrap()
        };
        let requests: Vec<SolveRequest> = (0..8)
            .map(|k| request(Problem::anisotropic(0.1), 17, 60 + k))
            .collect();
        let clone_all = |rs: &[SolveRequest]| -> Vec<SolveRequest> {
            rs.iter()
                .map(|r| SolveRequest::new(r.problem.clone(), r.x0.clone(), r.b.clone(), r.tol))
                .collect()
        };

        let svc4 = make("w4", 4);
        assert_eq!(svc4.batch_width(), 4);
        let at4 = svc4.solve_many(clone_all(&requests));
        let stats4 = svc4.stats();
        assert_eq!(stats4.batch_width, 4);
        assert_eq!(stats4.batches, 2, "8 requests = two width-4 groups");
        assert_eq!(stats4.batched_requests, 8);

        let svc8 = make("w8", 8);
        assert_eq!(svc8.batch_width(), 8);
        let at8 = svc8.solve_many(clone_all(&requests));
        let stats8 = svc8.stats();
        assert_eq!(stats8.batch_width, 8);
        assert_eq!(stats8.batches, 1, "8 requests = one width-8 group");
        assert_eq!(stats8.batched_requests, 8);

        for (k, (r4, r8)) in at4.into_iter().zip(at8).enumerate() {
            let r4 = r4.expect("width-4 lane serves");
            let r8 = r8.expect("width-8 lane serves");
            assert_eq!(
                r4.x.as_slice(),
                r8.x.as_slice(),
                "slot {k}: results must be bitwise independent of width"
            );
            assert_eq!(r4.report.batch_width, 4, "slot {k}");
            assert_eq!(r8.report.batch_width, 8, "slot {k}");
        }
    }
}
