//! Quickstart: tune a `MULTIGRID-V_i` family and solve a Poisson problem.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use petamg::prelude::*;

fn main() {
    // 1. Tune. `quick` uses the deterministic modeled cost of an
    //    Intel-Harpertown-like machine, the paper's five accuracy
    //    targets {10, 10^3, 10^5, 10^7, 10^9}, and training data from
    //    the unbiased uniform distribution over [-2^32, 2^32].
    let max_level = 7; // grids up to 129x129
    let opts = TunerOptions::quick(max_level, Distribution::UnbiasedUniform);
    println!("tuning MULTIGRID-V up to N = {} ...", (1 << max_level) + 1);
    let tuned = VTuner::new(opts).tune();

    // 2. Inspect the DP table: the fastest choice per (level, accuracy).
    println!("\ntuned plans (rows: level, columns: accuracy targets):");
    print!("{:>10} |", "level\\acc");
    for p in &tuned.accuracies {
        print!(" {:>12}", format!("{p:.0e}"));
    }
    println!();
    for level in (1..=tuned.max_level).rev() {
        print!("{:>10} |", format!("{} (N={})", level, (1 << level) + 1));
        for i in 0..tuned.num_accuracies() {
            print!(" {:>12}", tuned.plan(level, i).describe());
        }
        println!();
    }

    // 3. Solve a fresh instance to accuracy 1e5.
    let mut inst = ProblemInstance::random(max_level, Distribution::UnbiasedUniform, 42);
    let report = tuned.solve(&mut inst, 1e5);
    println!(
        "\nsolved N={} to target 1e5: achieved accuracy {:.3e} in {:.3} ms \
         ({} relaxation sweeps, {} direct solves)",
        inst.n(),
        report.achieved_accuracy,
        report.seconds * 1e3,
        report.ops.total_relax_sweeps(),
        report.ops.total_direct_solves(),
    );

    // 4. Persist the tuned configuration (PetaBricks-style config file).
    let path = std::env::temp_dir().join("petamg_tuned_v.json");
    std::fs::write(&path, tuned.to_json()).expect("write config");
    println!("tuned configuration saved to {}", path.display());
}
