//! Quick check: do tuned plans diverge across problem families?
use petamg::prelude::*;

fn main() {
    let level = 5;
    let n = (1usize << level) + 1;
    let problems = vec![
        ("poisson", Problem::poisson()),
        ("aniso0.01", Problem::anisotropic_canonical()),
        ("smooth", Problem::smooth_sinusoidal(n)),
        ("jump1000", Problem::jump_inclusion(n)),
    ];
    let mut plans = Vec::new();
    for (name, p) in problems {
        let opts = TunerOptions::quick(level, Distribution::UnbiasedUniform).with_problem(p);
        let fam = VTuner::new(opts).tune();
        println!("=== {name} ===");
        for k in 2..=level {
            let row: Vec<String> = (0..fam.num_accuracies())
                .map(|i| fam.plan(k, i).describe())
                .collect();
            println!("  level {k}: {}", row.join("  "));
        }
        plans.push((name, fam.plans.clone()));
    }
    let base = &plans[0].1;
    for (name, p) in &plans[1..] {
        println!("{name} differs from poisson: {}", p != base);
    }
}
