//! The PetaBricks choice framework on the paper's introductory example:
//! autotuning a sort routine's algorithm choice and divide-and-conquer
//! cutoff (§1: "the algorithm switches from ... merge sort to ...
//! insertion sort once the working array size falls below a set
//! cutoff").
//!
//! ```bash
//! cargo run --release --example sort_autotune
//! ```

use petamg::choice::demo::SortTransform;
use petamg::choice::{GeneticTuner, GeneticTunerOptions, Tunable};

fn main() {
    let mut transform = SortTransform::new(0xFEED);
    let space = transform.space();

    println!("configuration space:");
    for spec in space.specs() {
        println!("  {} :: {:?}", spec.name, spec.kind);
    }

    let mut tuner = GeneticTuner::new(GeneticTunerOptions {
        initial_size: 64,
        max_size: 1 << 17,
        population_max: 8,
        mutants_per_generation: 6,
        passes: 2,
        seed: 7,
    });
    println!("\nrunning the bottom-up genetic tuner (sizes double from 64 to 131072) ...");
    let result = tuner.tune(&mut transform);

    println!("\ngeneration history:");
    println!("{:>8} {:>14} {:>12}", "size", "best cost (s)", "population");
    for g in &result.history {
        println!("{:>8} {:>14.6} {:>12}", g.size, g.best_cost, g.population);
    }

    println!("\nmulti-level algorithm (best config per size range):");
    let algo = space.find("algorithm").expect("param exists");
    let cutoff = space.find("cutoff").expect("param exists");
    for (max_size, cfg) in &result.multi_level.levels {
        let names = ["insertion", "merge", "quick"];
        println!(
            "  up to n = {:>7}: algorithm = {:<10} cutoff = {}",
            max_size,
            names[cfg.switch(algo)],
            cfg.int(cutoff)
        );
    }

    // Use the tuned configuration.
    let best = &result.best;
    let mut data: Vec<u64> = (0..100_000u64).rev().collect();
    transform.sort(best, &mut data);
    assert!(data.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "\ntuned sort verified on 100k reversed elements (algorithm = {}, cutoff = {})",
        ["insertion", "merge", "quick"][best.switch(algo)],
        best.int(cutoff)
    );
    println!("\ntuned config as a PetaBricks-style configuration file:");
    println!("{}", best.to_json(&space));
}
