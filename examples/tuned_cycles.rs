//! Render tuned cycle shapes (the paper's Fig 5): tune V and
//! full-multigrid families on an AMD-Barcelona-like modeled machine for
//! unbiased and biased data, then draw the cycles for accuracy targets
//! 10, 10^3, 10^5, 10^7.
//!
//! ```bash
//! cargo run --release --example tuned_cycles
//! ```

use petamg::core::plan::ExecCtx;
use petamg::core::render;
use petamg::prelude::*;
use std::sync::Arc;

fn main() {
    let max_level = 7;
    for dist in [Distribution::UnbiasedUniform, Distribution::BiasedUniform] {
        println!("=== {} uniform random training data ===\n", dist.name());
        let opts = TunerOptions::modeled(max_level, dist, MachineProfile::amd_barcelona());
        let fmg = FmgTuner::new(opts).tune();
        let v = &fmg.v;

        for (i, p) in v.accuracies.iter().enumerate().take(4) {
            println!(
                "--- MULTIGRID-V cycle, accuracy {:>6} (N = {}) ---",
                format!("{p:.0e}"),
                (1usize << max_level) + 1
            );
            let inst = ProblemInstance::random(max_level, dist, 1234);
            let mut ctx = ExecCtx::new(Exec::seq()).tracing();
            let mut x = inst.working_grid();
            v.run(max_level, i, &mut x, &inst.b, &mut ctx);
            println!("{}", render::render_cycle(&ctx.tracer.events));
            println!("({})\n", render::summarize_trace(&ctx.tracer.events));

            println!(
                "--- FULL-MULTIGRID cycle, accuracy {:>6} ---",
                format!("{p:.0e}")
            );
            let mut ctx = ExecCtx::with_cache(Exec::seq(), Arc::new(Default::default())).tracing();
            let mut x = inst.working_grid();
            fmg.run(max_level, i, &mut x, &inst.b, &mut ctx);
            println!("{}", render::render_cycle(&ctx.tracer.events));
            let _ = inst;
        }
    }
    println!(
        "note: dots are SOR(1.15) relaxations; D = band-Cholesky direct solve;\n\
         S = iterated SOR(w_opt); cycle shapes depend on the modeled machine,\n\
         the training distribution, and the accuracy target — the paper's core claim."
    );
}
