//! Autotuned vs fixed-accuracy heuristics (the paper's Figs 7–8, in
//! miniature): strategies 10^9 and 10^x/10^9 against the DP-tuned
//! algorithm, on biased uniform data, priced with the modeled
//! Intel-Harpertown machine.
//!
//! ```bash
//! cargo run --release --example heuristic_battle
//! ```

use petamg::core::heuristics::paper_strategies;
use petamg::core::tuner::priced_run;
use petamg::prelude::*;
use std::sync::Arc;

fn main() {
    let max_level = 7;
    let opts = TunerOptions::quick(max_level, Distribution::BiasedUniform);
    let profile = MachineProfile::intel_harpertown();

    println!("tuning the full DP family ...");
    let tuned = VTuner::new(opts.clone()).tune();
    println!("building heuristic strategies ...");
    let strategies = paper_strategies(&opts);

    let exec = Exec::seq();
    let cache = Arc::new(petamg::solvers::DirectSolverCache::new());

    println!(
        "\n{:<20} {:>14} {:>22}",
        "algorithm", "modeled time", "x slower than tuned"
    );
    for level in [5, 6, 7] {
        let inst = ProblemInstance::random(level, Distribution::BiasedUniform, 9_999);
        let (tuned_cost, _) = priced_run(&profile, &exec, &cache, |ctx| {
            let mut x = inst.working_grid();
            tuned.run(level, tuned.acc_index_for(1e9), &mut x, &inst.b, ctx);
        });
        println!("\n-- problem size N = {} --", inst.n());
        println!(
            "{:<20} {:>12.3}us {:>22.2}",
            "Autotuned",
            tuned_cost * 1e6,
            1.0
        );
        for (name, fam) in &strategies {
            let (cost, _) = priced_run(&profile, &exec, &cache, |ctx| {
                let mut x = inst.working_grid();
                fam.run(level, fam.num_accuracies() - 1, &mut x, &inst.b, ctx);
            });
            println!(
                "{:<20} {:>12.3}us {:>22.2}",
                name,
                cost * 1e6,
                cost / tuned_cost
            );
        }
    }
    println!(
        "\nAll algorithms reach accuracy 1e9; they differ in what accuracy they\n\
         demand at lower recursion levels. The tuned algorithm may pick different\n\
         sub-accuracies at every level, which no fixed strategy can express (Fig 8)."
    );
}
