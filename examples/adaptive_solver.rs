//! Dynamic tuning (the paper's §6 future work): classify incoming
//! problems by input distribution and dispatch to the matching tuned
//! family.
//!
//! ```bash
//! cargo run --release --example adaptive_solver
//! ```

use petamg::core::adaptive::{classify, AdaptiveSolver};
use petamg::prelude::*;

fn main() {
    let level = 6;
    println!("training one MULTIGRID-V family per distribution class ...");
    let base = TunerOptions::quick(level, Distribution::UnbiasedUniform);
    let solver = AdaptiveSolver::train(&base);
    println!("classes trained: {:?}\n", solver.classes());

    let exec = Exec::seq();
    for (label, dist, seed) in [
        ("dense zero-mean", Distribution::UnbiasedUniform, 101u64),
        ("dense shifted", Distribution::BiasedUniform, 102),
        ("8 point sources", Distribution::PointSources(8), 103),
    ] {
        let mut inst = ProblemInstance::random(level, dist, seed);
        let class = classify(&inst.b);
        let report = solver.solve(&mut inst, 1e5, &exec);
        println!(
            "{label:<18} -> classified {class:?}; solved to {:.2e} \
             ({} sweeps, {} direct solves)",
            report.achieved_accuracy,
            report.ops.total_relax_sweeps(),
            report.ops.total_direct_solves(),
        );
    }
    println!(
        "\nEach problem ran the cycle shape tuned for its own distribution —\n\
         no retuning at solve time, just a cheap input-feature dispatch."
    );
}
