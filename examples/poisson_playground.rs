//! Tour of the solver substrate: direct vs SOR vs reference multigrid vs
//! full multigrid on one Poisson instance, with sequential and
//! work-stealing parallel execution.
//!
//! ```bash
//! cargo run --release --example poisson_playground
//! ```

use petamg::grid::{l2_diff, l2_norm_interior, residual, Exec, Grid2d};
use petamg::prelude::*;
use petamg::solvers::{sor_sweep, DirectSolverCache, MgConfig, ReferenceSolver};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let level = 8; // N = 257
    let n = (1usize << level) + 1;
    let mut inst = ProblemInstance::random(level, Distribution::UnbiasedUniform, 2024);
    let exec = Exec::seq();
    let cache = Arc::new(DirectSolverCache::new());
    let x_opt = inst.ensure_x_opt(&exec, &cache).clone();
    let e0 = l2_diff(&inst.x0, &x_opt, &exec);
    println!("N = {n}, initial error = {e0:.3e}\n");
    let target = 1e7;

    // Iterated SOR with the optimal weight.
    {
        let mut x = inst.working_grid();
        let omega = omega_opt(n);
        let start = Instant::now();
        let mut iters = 0;
        while l2_diff(&x, &x_opt, &exec) > e0 / target && iters < 50_000 {
            sor_sweep(&mut x, &inst.b, omega, &exec);
            iters += 1;
        }
        println!(
            "SOR(w_opt={omega:.4}) to 1e7:     {iters:>6} sweeps, {:>9.1} ms",
            start.elapsed().as_secs_f64() * 1e3
        );
    }

    // Reference V cycles.
    let solver = ReferenceSolver::with_cache(MgConfig::default(), Arc::clone(&cache));
    {
        let mut x = inst.working_grid();
        let start = Instant::now();
        let iters = solver
            .solve_v_until(&mut x, &inst.b, 100, |x| {
                l2_diff(x, &x_opt, &exec) <= e0 / target
            })
            .cycles();
        println!(
            "Reference V cycles to 1e7:     {iters:>6} cycles, {:>9.1} ms",
            start.elapsed().as_secs_f64() * 1e3
        );
    }

    // Reference full multigrid.
    {
        let mut x = inst.working_grid();
        let start = Instant::now();
        let iters = solver
            .solve_fmg_until(&mut x, &inst.b, 100, |x| {
                l2_diff(x, &x_opt, &exec) <= e0 / target
            })
            .cycles();
        println!(
            "Reference FMG to 1e7:          {iters:>6} passes, {:>9.1} ms",
            start.elapsed().as_secs_f64() * 1e3
        );
    }

    // Autotuned (measured wall-clock tuning on this machine!).
    {
        println!("\ntuning on this machine (wall-clock cost model) ...");
        let opts = TunerOptions::measured(level, Distribution::UnbiasedUniform, Exec::seq());
        let tuned = VTuner::new(opts).tune();
        let report = tuned.solve_with(&mut inst.clone(), target, &exec, &cache);
        println!(
            "Autotuned MULTIGRID-V to 1e7:  achieved {:.2e} in {:>9.1} ms ({})",
            report.achieved_accuracy,
            report.seconds * 1e3,
            tuned.plan(level, report.acc_idx).describe()
        );
    }

    // Parallel execution through the work-stealing runtime.
    {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(2);
        let par = Exec::pbrt(threads);
        let par_solver = ReferenceSolver::with_cache(
            MgConfig {
                exec: par.clone(),
                ..MgConfig::default()
            },
            Arc::clone(&cache),
        );
        let mut xs = inst.working_grid();
        let mut xp = inst.working_grid();
        let t0 = Instant::now();
        for _ in 0..10 {
            solver.vcycle(&mut xs, &inst.b);
        }
        let seq_time = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for _ in 0..10 {
            par_solver.vcycle(&mut xp, &inst.b);
        }
        let par_time = t0.elapsed().as_secs_f64();
        assert_eq!(
            xs.as_slice(),
            xp.as_slice(),
            "red-black parallel execution is bitwise deterministic"
        );
        println!(
            "\n10 V cycles: sequential {:.1} ms, {threads}-thread work-stealing {:.1} ms \
             (speedup {:.2}x, results bitwise identical)",
            seq_time * 1e3,
            par_time * 1e3,
            seq_time / par_time
        );
    }

    // Residual check for good measure.
    let mut x = inst.working_grid();
    for _ in 0..12 {
        solver.vcycle(&mut x, &inst.b);
    }
    let mut r = Grid2d::zeros(n);
    residual(&x, &inst.b, &mut r, &exec);
    println!(
        "\nfinal relative residual after 12 V cycles: {:.2e}",
        l2_norm_interior(&r, &exec) / l2_norm_interior(&inst.b, &exec)
    );
}
