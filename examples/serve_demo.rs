//! The plan-serving engine, end to end — including the env-driven
//! chaos drill against a *running service*.
//!
//! A [`SolverService`] is the tune-once/serve-many front door: plans
//! live in a fingerprint-keyed [`PlanLibrary`] directory, requests
//! flow through a bounded queue onto warm pool workers, and concurrent
//! cold fingerprints coalesce onto a single tuning flight.
//!
//! Run healthy:
//!
//! ```bash
//! cargo run --release --example serve_demo
//! ```
//!
//! Run it twice and watch the second process serve every plan from
//! disk without tuning. Then break things mid-serve with
//! `PETAMG_FAULTS` (comma-separated spec; see `petamg::core::faults`)
//! — the faults ride one designated chaos request onto its worker
//! thread while the rest of the traffic keeps flowing:
//!
//! ```bash
//! # Corrupt the chaos request's plan read: quarantine + re-tune.
//! PETAMG_FAULTS=corrupt-plan cargo run --release --example serve_demo
//!
//! # Sabotage its whole ladder: typed error, iterate restored, service lives.
//! PETAMG_FAULTS=poison-level:1,poison-level:1,fail-direct:33 \
//!     cargo run --release --example serve_demo
//! ```
//!
//! Turn on telemetry to see the same run through the metric registry —
//! `PETAMG_TELEMETRY=1` prints the Prometheus exposition,
//! `PETAMG_TELEMETRY=2` additionally writes a Chrome trace
//! (`chrome://tracing` / `ui.perfetto.dev`) next to the plan dir:
//!
//! ```bash
//! PETAMG_TELEMETRY=2 cargo run --release --example serve_demo
//! ```

use petamg::core::faults;
use petamg::obs;
use petamg::prelude::*;
use petamg::serve::ServeError;

fn request(problem: &Problem, level: usize, seed: u64) -> SolveRequest {
    let inst = ProblemInstance::random_for(problem, level, Distribution::UnbiasedUniform, seed);
    SolveRequest::new(problem.clone(), inst.working_grid(), inst.b.clone(), 1e-8)
}

fn main() {
    obs::env::warn_unknown_once();
    let level = 5; // N = 33
    let n = (1usize << level) + 1;
    let plan_dir = obs::env::plan_dir().unwrap_or_else(|| {
        std::env::temp_dir()
            .join("petamg-serve-demo-plans")
            .to_string_lossy()
            .into_owned()
    });
    println!("plan library: {plan_dir}");

    let svc = SolverService::start(
        ServiceConfig::new(&plan_dir)
            .with_workers(4)
            .with_queue_capacity(64),
    )
    .expect("plan directory must be creatable");

    // The service arms faults on the worker serving a request, so an
    // env-driven drill translates PETAMG_FAULTS into request faults.
    let drill = match obs::env::faults_spec() {
        Some(spec) if !spec.is_empty() => {
            let parsed = faults::parse_spec(&spec).expect("PETAMG_FAULTS spec");
            println!(
                "chaos drill: {} fault(s) ride the poisson request\n",
                parsed.len()
            );
            parsed
        }
        _ => Vec::new(),
    };

    let profiles = vec![
        ("poisson", Problem::poisson()),
        ("aniso eps=0.1", Problem::anisotropic(0.1)),
        ("smooth coeffs", Problem::smooth_sinusoidal(n)),
        ("jump coeffs", Problem::jump_inclusion(n)),
    ];

    // Submit round by round: cold fingerprints tune (coalescing across
    // duplicates), warm ones serve from memory or disk. The chaos
    // faults ride round 1's poisson request; forcing that round back
    // to disk makes a corrupt-plan drill bite deterministically.
    let mut tickets = Vec::new();
    for round in 0..3u64 {
        if round == 1 && !drill.is_empty() {
            svc.drain();
            svc.library().clear_cache();
        }
        for (tag, problem) in &profiles {
            let mut req = request(problem, level, 7 + round);
            if *tag == "poisson" && round == 1 {
                req = req.with_faults(drill.clone());
            }
            tickets.push((*tag, round, svc.submit_blocking(req)));
        }
    }

    for (tag, round, ticket) in tickets {
        match ticket.wait() {
            Ok(report) => println!(
                "[{tag:>13} #{round}] {:>9} via {:?}: residual {:.3e} on rung {}",
                "converged", report.plan, report.report.rel_residual, report.report.rung,
            ),
            Err(ServeError::Ladder { error, .. }) => {
                println!("[{tag:>13} #{round}] typed ladder failure (iterate restored): {error}")
            }
            Err(e) => println!("[{tag:>13} #{round}] typed error: {e}"),
        }
    }

    let stats = svc.stats();
    let lib = svc.library().stats();
    println!(
        "\nserved {} requests: {} converged, {} ladder failures, {} panics",
        stats.completed, stats.converged, stats.ladder_failures, stats.panics
    );
    println!(
        "plans: {} tuned here, {} coalesced waits, {} memory hits, {} disk loads, {} quarantined",
        stats.tunes, stats.coalesced, lib.hits, lib.disk_loads, lib.quarantined
    );
    println!(
        "direct-factor cache: {} factors resident (bound {}), {} evictions",
        svc.direct_cache().len(),
        petamg::solvers::DEFAULT_FACTOR_CAPACITY,
        svc.direct_cache().evictions()
    );

    // With the telemetry gate open, surface the same run through the
    // sinks: Prometheus text for scrapers, and (in trace mode) a
    // Chrome trace-event file for chrome://tracing / ui.perfetto.dev.
    if obs::enabled() {
        println!("\n--- telemetry (Prometheus exposition) ---");
        print!("{}", svc.prometheus());
        if obs::trace_enabled() {
            let trace_path = std::path::Path::new(&plan_dir).join("serve-trace.json");
            match std::fs::write(&trace_path, svc.chrome_trace()) {
                Ok(()) => println!(
                    "\nwrote request-phase chrome trace to {}",
                    trace_path.display()
                ),
                Err(e) => println!("\ncould not write chrome trace: {e}"),
            }
        }
    }
}
