//! Guarded solves and the degradation ladder, end to end — including
//! the env-driven chaos drill.
//!
//! A [`GuardedSolver`] runs a tuned plan under a [`SolveGuard`]
//! (finiteness, divergence, stagnation, cycle/wall-clock budgets) and
//! walks the degradation ladder on any failure:
//!
//! ```text
//!   tuned plan  →  heuristic MULTIGRID-V-SIMPLE  →  direct solve
//! ```
//!
//! Run healthy:
//!
//! ```bash
//! cargo run --release --example guarded_solve
//! ```
//!
//! Then break things with the `PETAMG_FAULTS` variable (comma-separated
//! spec; see `petamg::core::faults`) and watch the ladder absorb it:
//!
//! ```bash
//! # NaN injected into a top-level kernel: tuned rung fails, heuristic serves.
//! PETAMG_FAULTS=poison-level:7 cargo run --release --example guarded_solve
//!
//! # Poison both plan rungs: the direct rung serves.
//! PETAMG_FAULTS=poison-level:1,poison-level:1 cargo run --release --example guarded_solve
//!
//! # Sabotage every rung: a typed SolveError, x restored, no panic.
//! PETAMG_FAULTS=poison-level:1,poison-level:1,fail-direct:129 \
//!     cargo run --release --example guarded_solve
//! ```

use petamg::core::faults;
use petamg::core::plan::{simple_v_family, PAPER_ACCURACIES};
use petamg::prelude::*;

fn main() {
    // Honour PETAMG_FAULTS on this (the solve-driving) thread. This is
    // opt-in per binary: library users never pay for the env read.
    let armed = faults::arm_thread_from_env();
    if armed > 0 {
        println!("chaos drill: {armed} fault(s) armed from PETAMG_FAULTS\n");
    }

    let level = 7; // N = 129
    let problem = Problem::poisson();
    let inst = ProblemInstance::random_for(&problem, level, Distribution::UnbiasedUniform, 2024);

    let solver = GuardedSolver::new(problem)
        .with_plan(simple_v_family(level, &PAPER_ACCURACIES))
        .with_tracing();

    let mut x = inst.working_grid();
    match solver.solve(&mut x, &inst.b, 1e-9) {
        Ok(report) => {
            println!("served by rung:    {}", report.rung);
            println!(
                "status:            {:?} ({} cycle(s))",
                report.status,
                report.status.cycles()
            );
            println!("relative residual: {:.3e}", report.rel_residual);
            println!("wall time:         {:.1} ms", report.seconds * 1e3);
            if report.degraded() {
                println!("\ndegradations on the way down:");
                for d in &report.degradations {
                    println!("  {} failed: {}", d.rung, d.reason);
                }
            }
            println!("\nresidual trajectory at the serving rung:");
            for (i, r) in report.residual_history.iter().enumerate() {
                println!("  cycle {:>2}: {r:.3e}", i + 1);
            }
        }
        Err(err) => {
            println!("every rung failed — typed error, x restored to the initial guess:");
            for d in &err.degradations {
                println!("  {} failed: {}", d.rung, d.reason);
            }
        }
    }
}
