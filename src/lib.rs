//! # petamg — Autotuning Multigrid with PetaBricks, in Rust
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! *Chan, Ansel, Wong, Amarasinghe, Edelman — "Autotuning Multigrid with
//! PetaBricks" (SC 2009)*.
//!
//! The headline system is an **accuracy-aware dynamic-programming
//! autotuner** that builds tuned multigrid cycle shapes for the 2D
//! Poisson equation: at every recursion level it chooses between a
//! direct band-Cholesky solve, iterated Red-Black SOR, and recursive
//! multigrid calls into sub-algorithms tuned for *other* accuracy
//! levels, using the accuracy metric ‖x_in − x_opt‖/‖x_out − x_opt‖ as
//! the common yardstick (paper §2).
//!
//! Module map:
//! * [`grid`] — 2D grid substrate: 5-point Laplacian, residual,
//!   full-weighting restriction, bilinear interpolation, norms; the
//!   **fused hot-path kernels** (`residual_restrict`,
//!   `interpolate_correct` — bitwise equal to their unfused
//!   compositions) and the **`Workspace` arena** of pooled per-level
//!   scratch that makes steady-state cycles allocation-free.
//! * [`linalg`] — packed band Cholesky (the paper's LAPACK `DPBSV`).
//! * [`runtime`] — Cilk-style work-stealing pool (PetaBricks runtime).
//! * [`choice`] — PetaBricks-style choice framework: config spaces,
//!   bottom-up genetic autotuner, n-ary parameter search.
//! * [`solvers`] — Red-Black SOR, weighted Jacobi, reference V-cycle /
//!   W-cycle / full-multigrid solvers.
//! * [`core`] — the paper's contribution: accuracy metric, DP tuner for
//!   `MULTIGRID-V_i` and `FULL-MULTIGRID_i`, tuned-plan executor, cycle
//!   tracing/rendering, machine cost models, training distributions.
//!
//! ## Quickstart
//!
//! ```no_run
//! use petamg::prelude::*;
//!
//! // Tune a MULTIGRID-V family up to grids of 129x129 for the paper's
//! // five accuracy targets, on training data from the unbiased
//! // distribution, using the deterministic modeled cost of an
//! // Intel-Harpertown-like machine.
//! let opts = TunerOptions::quick(7, Distribution::UnbiasedUniform);
//! let tuned = VTuner::new(opts).tune();
//!
//! // Solve a fresh instance to accuracy 1e5.
//! let mut inst = ProblemInstance::random(7, Distribution::UnbiasedUniform, 42);
//! let report = tuned.solve(&mut inst, 1e5);
//! assert!(report.achieved_accuracy >= 1e5);
//! ```

pub use petamg_choice as choice;
pub use petamg_core as core;
pub use petamg_grid as grid;
pub use petamg_linalg as linalg;
pub use petamg_problems as problems;
pub use petamg_runtime as runtime;
pub use petamg_solvers as solvers;

/// Convenience prelude with the most common types.
pub mod prelude {
    pub use petamg_choice::{KernelKnobs, KnobTable};
    pub use petamg_core::accuracy::{error_ratio, AccuracyReport};
    pub use petamg_core::cost::{CostModel, MachineProfile};
    pub use petamg_core::plan::{Choice, ExecCtx, TunedFamily, TunedFmgFamily};
    pub use petamg_core::training::{Distribution, ProblemInstance};
    pub use petamg_core::tuner::{FmgTuner, KnobSearchOptions, TunerOptions, VTuner};
    pub use petamg_grid::{Exec, Grid2d, Workspace};
    pub use petamg_grid::{SimdMode, SimdPolicy};
    pub use petamg_problems::{
        CoeffProfile, Problem, ProblemFingerprint, ProblemMismatch, StencilOp,
    };
    pub use petamg_runtime::ThreadPool;
    pub use petamg_solvers::multigrid::{MgConfig, ReferenceSolver};
    pub use petamg_solvers::relax::omega_opt;
}

/// Plan persistence: tuned families — including their per-level kernel
/// knob tables — as PetaBricks-style JSON configuration files.
///
/// Loading accepts both the current versioned schema and legacy files
/// written before knob tables existed (those fall back to a uniform
/// table of the global default knobs). Saving always writes the
/// current schema, so a load→save pass upgrades a legacy file.
///
/// ```no_run
/// use petamg::persist;
/// use petamg::prelude::*;
///
/// let tuned = VTuner::new(TunerOptions::quick(5, Distribution::UnbiasedUniform)).tune();
/// persist::save_plan(&tuned, "family.json".as_ref()).unwrap();
/// let loaded = persist::load_plan("family.json".as_ref()).unwrap();
/// assert_eq!(loaded.knobs, tuned.knobs);
/// let mut inst = ProblemInstance::random(5, Distribution::UnbiasedUniform, 42);
/// // solve() executes with the plan's own per-level knob table.
/// let report = loaded.solve(&mut inst, 1e5);
/// assert!(report.achieved_accuracy >= 1e5 * 0.5);
/// ```
pub mod persist {
    use petamg_core::plan::{TunedFamily, TunedFmgFamily};
    use petamg_problems::{Problem, ProblemMismatch};
    use std::path::Path;

    /// Typed failure modes of [`load_plan_for`]: I/O, parse/validation,
    /// or a plan tuned for a different problem than the one posed.
    #[derive(Debug)]
    pub enum PlanLoadError {
        /// Reading the file failed.
        Io(std::io::Error),
        /// The file did not parse/validate as a tuned plan.
        Parse(String),
        /// The plan's [`ProblemFingerprint`](petamg_problems::ProblemFingerprint)
        /// does not match the posed problem.
        ProblemMismatch(ProblemMismatch),
    }

    impl std::fmt::Display for PlanLoadError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                PlanLoadError::Io(e) => write!(f, "plan file unreadable: {e}"),
                PlanLoadError::Parse(e) => write!(f, "plan file invalid: {e}"),
                PlanLoadError::ProblemMismatch(e) => write!(f, "{e}"),
            }
        }
    }

    impl std::error::Error for PlanLoadError {}

    /// Save a tuned `MULTIGRID-V` family (with its knob table).
    pub fn save_plan(family: &TunedFamily, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, family.to_json())
    }

    /// Load a tuned `MULTIGRID-V` family; legacy files without a knob
    /// table load with the uniform default table.
    pub fn load_plan(path: &Path) -> Result<TunedFamily, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        TunedFamily::from_json(&text)
    }

    /// Load a tuned `MULTIGRID-V` family **for a posed problem**: the
    /// plan's `ProblemFingerprint` (schema v4; legacy files upgrade to
    /// the Poisson fingerprint) must match `problem`'s, otherwise the
    /// file is rejected with the typed
    /// [`PlanLoadError::ProblemMismatch`] — a plan tuned for smooth
    /// coefficients is never silently applied to a jump-coefficient
    /// run.
    pub fn load_plan_for(path: &Path, problem: &Problem) -> Result<TunedFamily, PlanLoadError> {
        let text = std::fs::read_to_string(path).map_err(PlanLoadError::Io)?;
        let family = TunedFamily::from_json(&text).map_err(PlanLoadError::Parse)?;
        family
            .ensure_problem(problem.fingerprint())
            .map_err(PlanLoadError::ProblemMismatch)?;
        Ok(family)
    }

    /// Save a tuned `FULL-MULTIGRID` family (the knob table travels
    /// inside the embedded V family).
    pub fn save_fmg_plan(family: &TunedFmgFamily, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, family.to_json())
    }

    /// Load a tuned `FULL-MULTIGRID` family, upgrading legacy files
    /// like [`load_plan`].
    pub fn load_fmg_plan(path: &Path) -> Result<TunedFmgFamily, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        TunedFmgFamily::from_json(&text)
    }
}
