//! # petamg — Autotuning Multigrid with PetaBricks, in Rust
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! *Chan, Ansel, Wong, Amarasinghe, Edelman — "Autotuning Multigrid with
//! PetaBricks" (SC 2009)*.
//!
//! The headline system is an **accuracy-aware dynamic-programming
//! autotuner** that builds tuned multigrid cycle shapes for the 2D
//! Poisson equation: at every recursion level it chooses between a
//! direct band-Cholesky solve, iterated Red-Black SOR, and recursive
//! multigrid calls into sub-algorithms tuned for *other* accuracy
//! levels, using the accuracy metric ‖x_in − x_opt‖/‖x_out − x_opt‖ as
//! the common yardstick (paper §2).
//!
//! Module map:
//! * [`grid`] — 2D grid substrate: 5-point Laplacian, residual,
//!   full-weighting restriction, bilinear interpolation, norms; the
//!   **fused hot-path kernels** (`residual_restrict`,
//!   `interpolate_correct` — bitwise equal to their unfused
//!   compositions) and the **`Workspace` arena** of pooled per-level
//!   scratch that makes steady-state cycles allocation-free.
//! * [`linalg`] — packed band Cholesky (the paper's LAPACK `DPBSV`).
//! * [`runtime`] — Cilk-style work-stealing pool (PetaBricks runtime).
//! * [`choice`] — PetaBricks-style choice framework: config spaces,
//!   bottom-up genetic autotuner, n-ary parameter search.
//! * [`solvers`] — Red-Black SOR, weighted Jacobi, reference V-cycle /
//!   W-cycle / full-multigrid solvers.
//! * [`core`] — the paper's contribution: accuracy metric, DP tuner for
//!   `MULTIGRID-V_i` and `FULL-MULTIGRID_i`, tuned-plan executor, cycle
//!   tracing/rendering, machine cost models, training distributions.
//! * [`serve`] — the tune-once/serve-many layer: a fingerprint-keyed
//!   [`PlanLibrary`](petamg_serve::PlanLibrary) over checksummed plan
//!   files and a [`SolverService`](petamg_serve::SolverService) with a
//!   bounded queue, warm per-worker arenas, and single-flight tuning.
//! * [`obs`] — the telemetry substrate: metric registry (counters,
//!   gauges, lock-free sharded latency histograms), request-phase
//!   spans, and three sinks (structured JSON snapshot, Prometheus text
//!   exposition, Chrome trace-event export), all gated by
//!   `PETAMG_TELEMETRY` so the disabled fast path is one relaxed
//!   atomic load.
//!
//! ## Quickstart
//!
//! ```no_run
//! use petamg::prelude::*;
//!
//! // Tune a MULTIGRID-V family up to grids of 129x129 for the paper's
//! // five accuracy targets, on training data from the unbiased
//! // distribution, using the deterministic modeled cost of an
//! // Intel-Harpertown-like machine.
//! let opts = TunerOptions::quick(7, Distribution::UnbiasedUniform);
//! let tuned = VTuner::new(opts).tune();
//!
//! // Solve a fresh instance to accuracy 1e5.
//! let mut inst = ProblemInstance::random(7, Distribution::UnbiasedUniform, 42);
//! let report = tuned.solve(&mut inst, 1e5);
//! assert!(report.achieved_accuracy >= 1e5);
//! ```

pub use petamg_choice as choice;
pub use petamg_core as core;
pub use petamg_grid as grid;
pub use petamg_linalg as linalg;
pub use petamg_obs as obs;
pub use petamg_problems as problems;
pub use petamg_runtime as runtime;
pub use petamg_serve as serve;
pub use petamg_solvers as solvers;

/// Convenience prelude with the most common types.
pub mod prelude {
    pub use petamg_choice::{KernelKnobs, KnobTable};
    pub use petamg_core::accuracy::{error_ratio, AccuracyReport};
    pub use petamg_core::cost::{CostModel, MachineProfile};
    pub use petamg_core::guard::{GuardedReport, GuardedSolver, SolveError};
    pub use petamg_core::plan::{Choice, ExecCtx, TunedFamily, TunedFmgFamily};
    pub use petamg_core::trace::LadderRung;
    pub use petamg_core::training::{Distribution, ProblemInstance};
    pub use petamg_core::tuner::{FmgTuner, KnobSearchOptions, TunerOptions, VTuner};
    pub use petamg_grid::{Exec, Grid2d, Workspace};
    pub use petamg_grid::{SimdMode, SimdPolicy};
    pub use petamg_obs::{render_prometheus, Registry, TelemetryMode, TelemetrySnapshot};
    pub use petamg_problems::{
        CoeffProfile, Problem, ProblemFingerprint, ProblemMismatch, StencilOp,
    };
    pub use petamg_runtime::ThreadPool;
    pub use petamg_serve::{
        PlanLibrary, PlanSource, Rejected, ServeError, ServeReport, ServiceConfig, SolveRequest,
        SolverService, TunePolicy,
    };
    pub use petamg_solvers::guard::{
        GuardConfig, GuardFailure, GuardVerdict, SolveGuard, SolveStatus,
    };
    pub use petamg_solvers::multigrid::{MgConfig, ReferenceSolver};
    pub use petamg_solvers::relax::omega_opt;
}

/// Hardened plan persistence (atomic writes, content checksums,
/// quarantine of corrupt files) — re-exported from
/// [`petamg_core::persist`], where the guarded-solve ladder can reach
/// it. See that module for the full story.
pub use petamg_core::persist;
